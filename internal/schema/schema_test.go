package schema

import (
	"strings"
	"testing"

	"tcodm/internal/value"
)

// testSchema builds the personnel schema used across the test suite:
// departments employ employees; employees work on projects.
func testSchema(t *testing.T) *Schema {
	t.Helper()
	s := New()
	mustAdd := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(s.AddAtomType(AtomType{
		Name: "Dept",
		Attrs: []Attribute{
			{Name: "name", Kind: value.KindString, Required: true},
			{Name: "budget", Kind: value.KindInt, Temporal: true},
		},
	}))
	mustAdd(s.AddAtomType(AtomType{
		Name: "Emp",
		Attrs: []Attribute{
			{Name: "name", Kind: value.KindString, Required: true},
			{Name: "salary", Kind: value.KindInt, Temporal: true},
			{Name: "dept", Kind: value.KindID, Target: "Dept", Card: One, Temporal: true},
		},
	}))
	mustAdd(s.AddAtomType(AtomType{
		Name: "Proj",
		Attrs: []Attribute{
			{Name: "title", Kind: value.KindString},
			{Name: "members", Kind: value.KindID, Target: "Emp", Card: Many, Temporal: true},
		},
	}))
	mustAdd(s.AddMoleculeType(MoleculeType{
		Name: "DeptStaff",
		Root: "Dept",
		Edges: []MoleculeEdge{
			{From: "Dept", Attr: "dept", To: "Emp", Reverse: true},
			{From: "Emp", Attr: "members", To: "Proj", Reverse: true},
		},
	}))
	return s
}

func TestSchemaLookup(t *testing.T) {
	s := testSchema(t)
	emp, ok := s.AtomType("Emp")
	if !ok {
		t.Fatal("Emp missing")
	}
	a, ok := emp.Attr("salary")
	if !ok || a.Kind != value.KindInt || !a.Temporal {
		t.Fatalf("salary attribute wrong: %+v ok=%v", a, ok)
	}
	if emp.AttrIndex("dept") != 2 {
		t.Errorf("dept index = %d", emp.AttrIndex("dept"))
	}
	if emp.AttrIndex("nope") != -1 {
		t.Error("missing attribute should index -1")
	}
	ref, _ := emp.Attr("dept")
	if !ref.IsRef() || ref.Target != "Dept" || ref.Card != One {
		t.Errorf("dept ref wrong: %+v", ref)
	}
	if _, ok := s.MoleculeType("DeptStaff"); !ok {
		t.Error("molecule type missing")
	}
	if _, ok := s.AtomType("Nothing"); ok {
		t.Error("phantom atom type")
	}
}

func TestSchemaNames(t *testing.T) {
	s := testSchema(t)
	got := s.AtomTypeNames()
	want := []string{"Dept", "Emp", "Proj"}
	if len(got) != len(want) {
		t.Fatalf("AtomTypeNames = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AtomTypeNames = %v, want %v", got, want)
		}
	}
	if m := s.MoleculeTypeNames(); len(m) != 1 || m[0] != "DeptStaff" {
		t.Fatalf("MoleculeTypeNames = %v", m)
	}
}

func TestAddAtomTypeRejections(t *testing.T) {
	cases := []struct {
		name string
		at   AtomType
		frag string
	}{
		{"bad name", AtomType{Name: "9lives", Attrs: []Attribute{{Name: "x", Kind: value.KindInt}}}, "invalid atom type name"},
		{"no attrs", AtomType{Name: "Empty"}, "no attributes"},
		{"bad attr name", AtomType{Name: "T", Attrs: []Attribute{{Name: "a b", Kind: value.KindInt}}}, "invalid attribute name"},
		{"dup attr", AtomType{Name: "T", Attrs: []Attribute{{Name: "x", Kind: value.KindInt}, {Name: "x", Kind: value.KindInt}}}, "duplicate attribute"},
		{"id without target", AtomType{Name: "T", Attrs: []Attribute{{Name: "x", Kind: value.KindID}}}, "requires a reference target"},
		{"ref wrong kind", AtomType{Name: "T", Attrs: []Attribute{{Name: "x", Kind: value.KindInt, Target: "T"}}}, "must have kind id"},
		{"null kind", AtomType{Name: "T", Attrs: []Attribute{{Name: "x", Kind: value.KindNull}}}, "invalid attribute kind"},
	}
	for _, c := range cases {
		s := New()
		err := s.AddAtomType(c.at)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.frag)
		}
	}
}

func TestAddAtomTypeDuplicate(t *testing.T) {
	s := New()
	at := AtomType{Name: "T", Attrs: []Attribute{{Name: "x", Kind: value.KindInt}}}
	if err := s.AddAtomType(at); err != nil {
		t.Fatal(err)
	}
	if err := s.AddAtomType(at); err == nil {
		t.Fatal("duplicate atom type accepted")
	}
}

func TestAddMoleculeTypeRejections(t *testing.T) {
	base := func() *Schema {
		s := New()
		_ = s.AddAtomType(AtomType{Name: "A", Attrs: []Attribute{
			{Name: "x", Kind: value.KindInt},
			{Name: "b", Kind: value.KindID, Target: "B"},
		}})
		_ = s.AddAtomType(AtomType{Name: "B", Attrs: []Attribute{{Name: "y", Kind: value.KindInt}}})
		_ = s.AddAtomType(AtomType{Name: "C", Attrs: []Attribute{{Name: "z", Kind: value.KindInt}}})
		return s
	}
	cases := []struct {
		name string
		mt   MoleculeType
		frag string
	}{
		{"unknown root", MoleculeType{Name: "M", Root: "Z"}, "unknown root"},
		{"unknown from", MoleculeType{Name: "M", Root: "A", Edges: []MoleculeEdge{{From: "Z", Attr: "b", To: "B"}}}, "unknown atom type"},
		{"unknown attr", MoleculeType{Name: "M", Root: "A", Edges: []MoleculeEdge{{From: "A", Attr: "q", To: "B"}}}, "no attribute"},
		{"non-ref attr", MoleculeType{Name: "M", Root: "A", Edges: []MoleculeEdge{{From: "A", Attr: "x", To: "B"}}}, "not a reference"},
		{"wrong target", MoleculeType{Name: "M", Root: "A", Edges: []MoleculeEdge{{From: "A", Attr: "b", To: "C"}}}, "targets"},
		{"disconnected", MoleculeType{Name: "M", Root: "B", Edges: []MoleculeEdge{{From: "A", Attr: "b", To: "B"}}}, "not reachable"},
	}
	for _, c := range cases {
		s := base()
		err := s.AddMoleculeType(c.mt)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.frag)
		}
	}
}

func TestReverseEdgeValidation(t *testing.T) {
	s := New()
	if err := s.AddAtomType(AtomType{Name: "A", Attrs: []Attribute{
		{Name: "b", Kind: value.KindID, Target: "B"},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddAtomType(AtomType{Name: "B", Attrs: []Attribute{{Name: "y", Kind: value.KindInt}}}); err != nil {
		t.Fatal(err)
	}
	// Reverse edge: from B back to A along A.b.
	err := s.AddMoleculeType(MoleculeType{Name: "M", Root: "B", Edges: []MoleculeEdge{
		{From: "B", Attr: "b", To: "A", Reverse: true},
	}})
	if err != nil {
		t.Fatalf("valid reverse edge rejected: %v", err)
	}
}

func TestFreezeBlocksDDL(t *testing.T) {
	s := testSchema(t)
	s.Freeze()
	if err := s.AddAtomType(AtomType{Name: "X", Attrs: []Attribute{{Name: "a", Kind: value.KindInt}}}); err == nil {
		t.Error("frozen schema accepted atom type")
	}
	if err := s.AddMoleculeType(MoleculeType{Name: "X", Root: "Emp"}); err == nil {
		t.Error("frozen schema accepted molecule type")
	}
	// Clone is unfrozen and independent.
	c := s.Clone()
	if err := c.AddAtomType(AtomType{Name: "X", Attrs: []Attribute{{Name: "a", Kind: value.KindInt}}}); err != nil {
		t.Errorf("clone should accept DDL: %v", err)
	}
	if _, ok := s.AtomType("X"); ok {
		t.Error("clone leaked into original")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s := testSchema(t)
	s.Freeze()
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if names := got.AtomTypeNames(); len(names) != 3 {
		t.Fatalf("round-trip atom types = %v", names)
	}
	emp, ok := got.AtomType("Emp")
	if !ok {
		t.Fatal("Emp lost in round trip")
	}
	a, _ := emp.Attr("dept")
	if !a.IsRef() || a.Target != "Dept" || !a.Temporal || a.Card != One {
		t.Errorf("dept attribute corrupted: %+v", a)
	}
	members, _ := mustAtom(t, got, "Proj").Attr("members")
	if members.Card != Many {
		t.Errorf("members cardinality lost: %+v", members)
	}
	m, ok := got.MoleculeType("DeptStaff")
	if !ok || len(m.Edges) != 2 || !m.Edges[0].Reverse {
		t.Fatalf("molecule type corrupted: %+v", m)
	}
	// Round-tripped schema is frozen.
	if err := got.AddAtomType(AtomType{Name: "X", Attrs: []Attribute{{Name: "a", Kind: value.KindInt}}}); err == nil {
		t.Error("unmarshaled schema should be frozen")
	}
}

func mustAtom(t *testing.T, s *Schema, name string) *AtomType {
	t.Helper()
	at, ok := s.AtomType(name)
	if !ok {
		t.Fatalf("atom type %q missing", name)
	}
	return at
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	if _, err := Unmarshal([]byte("{")); err == nil {
		t.Error("syntactically corrupt catalog accepted")
	}
	if _, err := Unmarshal([]byte(`{"version": 99}`)); err == nil {
		t.Error("future version accepted")
	}
	// Structurally valid JSON encoding an invalid schema.
	bad := `{"version":1,"atoms":[{"name":"T","attrs":[{"name":"x","kind":"widget"}]}]}`
	if _, err := Unmarshal([]byte(bad)); err == nil {
		t.Error("unknown kind in catalog accepted")
	}
}

func TestEdgesFrom(t *testing.T) {
	s := testSchema(t)
	m, _ := s.MoleculeType("DeptStaff")
	if es := m.EdgesFrom("Dept"); len(es) != 1 || es[0].To != "Emp" {
		t.Errorf("EdgesFrom(Dept) = %v", es)
	}
	if es := m.EdgesFrom("Proj"); es != nil {
		t.Errorf("EdgesFrom(Proj) = %v, want none", es)
	}
}

func TestValidName(t *testing.T) {
	for _, good := range []string{"A", "Emp", "foo_bar9", "x"} {
		if !ValidName(good) {
			t.Errorf("ValidName(%q) = false", good)
		}
	}
	for _, bad := range []string{"", "9x", "a-b", "a b", "ü"} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true", bad)
		}
	}
}

func TestAddAttributeEvolution(t *testing.T) {
	s := testSchema(t)
	if err := s.AddAttribute("Emp", Attribute{Name: "bonus", Kind: value.KindInt, Temporal: true}); err != nil {
		t.Fatal(err)
	}
	emp, _ := s.AtomType("Emp")
	a, ok := emp.Attr("bonus")
	if !ok || !a.Temporal {
		t.Fatalf("bonus = %+v ok=%v", a, ok)
	}
	if emp.AttrIndex("bonus") != len(emp.Attrs)-1 {
		t.Error("evolved attribute not appended")
	}
	// The evolved schema round-trips through the catalog.
	s.Freeze()
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	emp2, _ := got.AtomType("Emp")
	if _, ok := emp2.Attr("bonus"); !ok {
		t.Error("evolved attribute lost in catalog round-trip")
	}
	// Frozen schema refuses evolution.
	if err := got.AddAttribute("Emp", Attribute{Name: "x", Kind: value.KindInt}); err == nil {
		t.Error("frozen schema evolved")
	}
}

func TestAddAttributeRejections(t *testing.T) {
	s := testSchema(t)
	cases := []struct {
		attr Attribute
		frag string
	}{
		{Attribute{Name: "name", Kind: value.KindInt}, "duplicate"},
		{Attribute{Name: "9bad", Kind: value.KindInt}, "invalid attribute name"},
		{Attribute{Name: "r", Kind: value.KindInt, Required: true}, "cannot be required"},
		{Attribute{Name: "r", Kind: value.KindID, Target: "Nope"}, "unknown target"},
		{Attribute{Name: "r", Kind: value.KindInt, Target: "Dept"}, "must have kind id"},
		{Attribute{Name: "r", Kind: value.KindNull}, "invalid attribute kind"},
	}
	for _, c := range cases {
		err := s.AddAttribute("Emp", c.attr)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("AddAttribute(%+v) = %v, want %q", c.attr, err, c.frag)
		}
	}
	if err := s.AddAttribute("Nope", Attribute{Name: "x", Kind: value.KindInt}); err == nil {
		t.Error("evolution of unknown type accepted")
	}
}
