package schema

import (
	"encoding/json"
	"fmt"

	"tcodm/internal/value"
)

// The catalog persists schemas as JSON inside the database file's catalog
// record. JSON keeps the catalog debuggable with standard tools; the format
// is versioned for forward evolution.

const catalogVersion = 1

type jsonAttribute struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Target   string `json:"target,omitempty"`
	Card     string `json:"card,omitempty"`
	Temporal bool   `json:"temporal,omitempty"`
	Required bool   `json:"required,omitempty"`
}

type jsonAtomType struct {
	Name  string          `json:"name"`
	Attrs []jsonAttribute `json:"attrs"`
}

type jsonEdge struct {
	From    string `json:"from"`
	Attr    string `json:"attr"`
	To      string `json:"to"`
	Reverse bool   `json:"reverse,omitempty"`
}

type jsonMoleculeType struct {
	Name  string     `json:"name"`
	Root  string     `json:"root"`
	Edges []jsonEdge `json:"edges,omitempty"`
}

type jsonCatalog struct {
	Version   int                `json:"version"`
	Atoms     []jsonAtomType     `json:"atoms"`
	Molecules []jsonMoleculeType `json:"molecules"`
}

// Marshal serializes the schema for the catalog.
func (s *Schema) Marshal() ([]byte, error) {
	cat := jsonCatalog{Version: catalogVersion}
	for _, name := range s.AtomTypeNames() {
		t := s.atomTypes[name]
		jt := jsonAtomType{Name: t.Name}
		for _, a := range t.Attrs {
			ja := jsonAttribute{
				Name:     a.Name,
				Kind:     a.Kind.String(),
				Target:   a.Target,
				Temporal: a.Temporal,
				Required: a.Required,
			}
			if a.IsRef() {
				ja.Card = a.Card.String()
			}
			jt.Attrs = append(jt.Attrs, ja)
		}
		cat.Atoms = append(cat.Atoms, jt)
	}
	for _, name := range s.MoleculeTypeNames() {
		m := s.moleculeTypes[name]
		jm := jsonMoleculeType{Name: m.Name, Root: m.Root}
		for _, e := range m.Edges {
			jm.Edges = append(jm.Edges, jsonEdge(e))
		}
		cat.Molecules = append(cat.Molecules, jm)
	}
	return json.Marshal(cat)
}

// Unmarshal reconstructs a frozen schema from catalog bytes, re-running all
// validation so a corrupt catalog cannot produce an inconsistent schema.
func Unmarshal(data []byte) (*Schema, error) {
	var cat jsonCatalog
	if err := json.Unmarshal(data, &cat); err != nil {
		return nil, fmt.Errorf("schema: corrupt catalog: %w", err)
	}
	if cat.Version != catalogVersion {
		return nil, fmt.Errorf("schema: unsupported catalog version %d", cat.Version)
	}
	s := New()
	for _, jt := range cat.Atoms {
		t := AtomType{Name: jt.Name}
		for _, ja := range jt.Attrs {
			kind, ok := value.ParseKind(ja.Kind)
			if !ok {
				return nil, fmt.Errorf("schema: catalog: %s.%s: unknown kind %q", jt.Name, ja.Name, ja.Kind)
			}
			card := One
			if ja.Card == "many" {
				card = Many
			}
			t.Attrs = append(t.Attrs, Attribute{
				Name:     ja.Name,
				Kind:     kind,
				Target:   ja.Target,
				Card:     card,
				Temporal: ja.Temporal,
				Required: ja.Required,
			})
		}
		if err := s.AddAtomType(t); err != nil {
			return nil, err
		}
	}
	for _, jm := range cat.Molecules {
		m := MoleculeType{Name: jm.Name, Root: jm.Root}
		for _, je := range jm.Edges {
			m.Edges = append(m.Edges, MoleculeEdge(je))
		}
		if err := s.AddMoleculeType(m); err != nil {
			return nil, err
		}
	}
	s.Freeze()
	return s, nil
}
