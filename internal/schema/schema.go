// Package schema defines the data-definition layer of the temporal
// complex-object model: atom types with scalar and reference attributes,
// and molecule types — rooted connected digraphs over atom types along
// reference attributes — from which complex objects are derived dynamically
// at query time.
//
// Following the MAD model, references are bidirectional: declaring a
// reference attribute on one atom type implicitly declares the inverse
// direction, and molecule types may traverse references in either
// direction.
package schema

import (
	"fmt"
	"regexp"
	"sort"

	"tcodm/internal/value"
)

// Cardinality constrains how many atoms a reference attribute may point to
// per valid-time instant.
type Cardinality uint8

const (
	// One: the reference holds at most one target atom at any instant.
	One Cardinality = iota
	// Many: the reference holds a set of target atoms.
	Many
)

// String returns "one" or "many".
func (c Cardinality) String() string {
	if c == Many {
		return "many"
	}
	return "one"
}

// Attribute describes one attribute of an atom type. Exactly one of the
// scalar form (Kind != KindNull, Target == "") and the reference form
// (Kind == value.KindID, Target != "") holds; IsRef distinguishes them.
type Attribute struct {
	Name string
	// Kind is the scalar domain, or value.KindID for references.
	Kind value.Kind
	// Target is the referenced atom type name (references only).
	Target string
	// Card is the reference cardinality (references only).
	Card Cardinality
	// Temporal marks the attribute as carrying a full valid-time history.
	// Non-temporal attributes keep only their latest value (they are
	// implicitly valid over the whole lifespan of the atom).
	Temporal bool
	// Required forbids Null as a current value.
	Required bool
}

// IsRef reports whether the attribute is a reference attribute.
func (a Attribute) IsRef() bool { return a.Target != "" }

// AtomType is the record type of atoms: a named list of attributes.
// Attribute order is the declaration order and is part of the physical
// record layout.
type AtomType struct {
	Name  string
	Attrs []Attribute

	byName map[string]int
}

// Attr returns the attribute with the given name, with ok=false if absent.
func (t *AtomType) Attr(name string) (Attribute, bool) {
	i, ok := t.byName[name]
	if !ok {
		return Attribute{}, false
	}
	return t.Attrs[i], true
}

// AttrIndex returns the positional index of the named attribute, or -1.
func (t *AtomType) AttrIndex(name string) int {
	if i, ok := t.byName[name]; ok {
		return i
	}
	return -1
}

// MoleculeEdge is one edge of a molecule type: traverse reference attribute
// Attr of atom type From, reaching atom type To. Reverse marks traversal
// against the declared direction (from the target type back to the owner of
// the reference attribute).
type MoleculeEdge struct {
	From    string
	Attr    string
	To      string
	Reverse bool
}

// MoleculeType defines a complex-object type: a root atom type plus edges
// describing which links to follow when materializing a molecule. The edge
// set must form a connected digraph reachable from the root. Edges may form
// cycles; materialization bounds recursion by visiting each atom once per
// molecule.
type MoleculeType struct {
	Name  string
	Root  string
	Edges []MoleculeEdge
}

// EdgesFrom returns the edges departing atom type name.
func (m *MoleculeType) EdgesFrom(name string) []MoleculeEdge {
	var out []MoleculeEdge
	for _, e := range m.Edges {
		if e.From == name {
			out = append(out, e)
		}
	}
	return out
}

// Schema is a complete catalog: atom types and molecule types. A Schema is
// immutable after Freeze; the engine swaps whole schemas on DDL.
type Schema struct {
	atomTypes     map[string]*AtomType
	moleculeTypes map[string]*MoleculeType
	frozen        bool
}

// New returns an empty, unfrozen schema.
func New() *Schema {
	return &Schema{
		atomTypes:     map[string]*AtomType{},
		moleculeTypes: map[string]*MoleculeType{},
	}
}

var nameRE = regexp.MustCompile(`^[A-Za-z][A-Za-z0-9_]*$`)

// ValidName reports whether s is a legal schema object or attribute name.
func ValidName(s string) bool { return nameRE.MatchString(s) }

// AddAtomType validates and registers an atom type.
func (s *Schema) AddAtomType(t AtomType) error {
	if s.frozen {
		return fmt.Errorf("schema: frozen")
	}
	if !ValidName(t.Name) {
		return fmt.Errorf("schema: invalid atom type name %q", t.Name)
	}
	if _, dup := s.atomTypes[t.Name]; dup {
		return fmt.Errorf("schema: atom type %q already defined", t.Name)
	}
	if len(t.Attrs) == 0 {
		return fmt.Errorf("schema: atom type %q has no attributes", t.Name)
	}
	t.byName = make(map[string]int, len(t.Attrs))
	for i, a := range t.Attrs {
		if !ValidName(a.Name) {
			return fmt.Errorf("schema: %s: invalid attribute name %q", t.Name, a.Name)
		}
		if _, dup := t.byName[a.Name]; dup {
			return fmt.Errorf("schema: %s: duplicate attribute %q", t.Name, a.Name)
		}
		if a.IsRef() {
			if a.Kind != value.KindID {
				return fmt.Errorf("schema: %s.%s: reference attributes must have kind id, got %s", t.Name, a.Name, a.Kind)
			}
		} else {
			switch a.Kind {
			case value.KindBool, value.KindInt, value.KindFloat, value.KindString, value.KindInstant:
			case value.KindID:
				return fmt.Errorf("schema: %s.%s: kind id requires a reference target", t.Name, a.Name)
			default:
				return fmt.Errorf("schema: %s.%s: invalid attribute kind %s", t.Name, a.Name, a.Kind)
			}
		}
		t.byName[a.Name] = i
	}
	s.atomTypes[t.Name] = &t
	return nil
}

// AddAttribute appends an attribute to an existing atom type (schema
// evolution). Atoms stored before the evolution simply lack versions for
// the new attribute: they read as Null until first updated.
func (s *Schema) AddAttribute(typeName string, a Attribute) error {
	if s.frozen {
		return fmt.Errorf("schema: frozen")
	}
	t, ok := s.atomTypes[typeName]
	if !ok {
		return fmt.Errorf("schema: unknown atom type %q", typeName)
	}
	if !ValidName(a.Name) {
		return fmt.Errorf("schema: %s: invalid attribute name %q", typeName, a.Name)
	}
	if _, dup := t.byName[a.Name]; dup {
		return fmt.Errorf("schema: %s: duplicate attribute %q", typeName, a.Name)
	}
	if a.Required {
		return fmt.Errorf("schema: %s.%s: attributes added by evolution cannot be required (existing atoms would violate it)", typeName, a.Name)
	}
	if a.IsRef() {
		if a.Kind != value.KindID {
			return fmt.Errorf("schema: %s.%s: reference attributes must have kind id", typeName, a.Name)
		}
		if _, ok := s.atomTypes[a.Target]; !ok {
			return fmt.Errorf("schema: %s.%s: unknown target type %q", typeName, a.Name, a.Target)
		}
	} else {
		switch a.Kind {
		case value.KindBool, value.KindInt, value.KindFloat, value.KindString, value.KindInstant:
		default:
			return fmt.Errorf("schema: %s.%s: invalid attribute kind %s", typeName, a.Name, a.Kind)
		}
	}
	t.byName[a.Name] = len(t.Attrs)
	t.Attrs = append(t.Attrs, a)
	return nil
}

// AddMoleculeType validates and registers a molecule type. All referenced
// atom types and reference attributes must already exist; connectivity from
// the root is enforced.
func (s *Schema) AddMoleculeType(m MoleculeType) error {
	if s.frozen {
		return fmt.Errorf("schema: frozen")
	}
	if !ValidName(m.Name) {
		return fmt.Errorf("schema: invalid molecule type name %q", m.Name)
	}
	if _, dup := s.moleculeTypes[m.Name]; dup {
		return fmt.Errorf("schema: molecule type %q already defined", m.Name)
	}
	if _, ok := s.atomTypes[m.Root]; !ok {
		return fmt.Errorf("schema: molecule %q: unknown root atom type %q", m.Name, m.Root)
	}
	for i, e := range m.Edges {
		fromT, ok := s.atomTypes[e.From]
		if !ok {
			return fmt.Errorf("schema: molecule %q edge %d: unknown atom type %q", m.Name, i, e.From)
		}
		toT, ok := s.atomTypes[e.To]
		if !ok {
			return fmt.Errorf("schema: molecule %q edge %d: unknown atom type %q", m.Name, i, e.To)
		}
		// Forward edges traverse a reference declared on From targeting To;
		// reverse edges traverse a reference declared on To targeting From.
		owner, target := fromT, toT
		if e.Reverse {
			owner, target = toT, fromT
		}
		attr, ok := owner.Attr(e.Attr)
		if !ok {
			return fmt.Errorf("schema: molecule %q edge %d: atom type %q has no attribute %q", m.Name, i, owner.Name, e.Attr)
		}
		if !attr.IsRef() {
			return fmt.Errorf("schema: molecule %q edge %d: attribute %s.%s is not a reference", m.Name, i, owner.Name, e.Attr)
		}
		if attr.Target != target.Name {
			return fmt.Errorf("schema: molecule %q edge %d: %s.%s targets %q, not %q", m.Name, i, owner.Name, e.Attr, attr.Target, target.Name)
		}
	}
	if err := checkConnected(&m); err != nil {
		return fmt.Errorf("schema: molecule %q: %w", m.Name, err)
	}
	s.moleculeTypes[m.Name] = &m
	return nil
}

// checkConnected verifies every edge endpoint is reachable from the root
// along the edge digraph.
func checkConnected(m *MoleculeType) error {
	reached := map[string]bool{m.Root: true}
	for changed := true; changed; {
		changed = false
		for _, e := range m.Edges {
			if reached[e.From] && !reached[e.To] {
				reached[e.To] = true
				changed = true
			}
		}
	}
	for _, e := range m.Edges {
		if !reached[e.From] {
			return fmt.Errorf("atom type %q not reachable from root %q", e.From, m.Root)
		}
	}
	return nil
}

// Freeze marks the schema immutable.
func (s *Schema) Freeze() { s.frozen = true }

// AtomType returns the named atom type, with ok=false if absent.
func (s *Schema) AtomType(name string) (*AtomType, bool) {
	t, ok := s.atomTypes[name]
	return t, ok
}

// MoleculeType returns the named molecule type, with ok=false if absent.
func (s *Schema) MoleculeType(name string) (*MoleculeType, bool) {
	m, ok := s.moleculeTypes[name]
	return m, ok
}

// AtomTypeNames returns the sorted names of all atom types.
func (s *Schema) AtomTypeNames() []string {
	names := make([]string, 0, len(s.atomTypes))
	for n := range s.atomTypes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MoleculeTypeNames returns the sorted names of all molecule types.
func (s *Schema) MoleculeTypeNames() []string {
	names := make([]string, 0, len(s.moleculeTypes))
	for n := range s.moleculeTypes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Clone returns an unfrozen deep copy (for DDL: copy, modify, freeze, swap).
func (s *Schema) Clone() *Schema {
	out := New()
	for _, name := range s.AtomTypeNames() {
		t := s.atomTypes[name]
		ct := AtomType{Name: t.Name, Attrs: append([]Attribute(nil), t.Attrs...)}
		ct.byName = make(map[string]int, len(ct.Attrs))
		for i, a := range ct.Attrs {
			ct.byName[a.Name] = i
		}
		out.atomTypes[name] = &ct
	}
	for _, name := range s.MoleculeTypeNames() {
		m := s.moleculeTypes[name]
		cm := MoleculeType{Name: m.Name, Root: m.Root, Edges: append([]MoleculeEdge(nil), m.Edges...)}
		out.moleculeTypes[name] = &cm
	}
	return out
}
