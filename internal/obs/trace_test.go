package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerRecordsSpansAndPoints(t *testing.T) {
	tr := NewTracer(16)
	id := tr.NextTraceID()
	if id == 0 {
		t.Fatal("trace id must be nonzero")
	}
	sp := tr.Start(id, "query.exec")
	time.Sleep(time.Millisecond)
	sp.End("rows=3")
	tr.Point(id, "pool.miss", "page=7")

	evs := tr.Events(0)
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Name != "query.exec" || evs[0].Dur <= 0 || evs[0].Attrs != "rows=3" {
		t.Fatalf("span event = %+v", evs[0])
	}
	if evs[1].Name != "pool.miss" || evs[1].Dur != 0 {
		t.Fatalf("point event = %+v", evs[1])
	}
	if evs[0].Trace != id || evs[1].Trace != id {
		t.Fatal("events must carry the trace id")
	}
	out := tr.String()
	if !strings.Contains(out, "query.exec") || !strings.Contains(out, "pool.miss") {
		t.Fatalf("String() = %q", out)
	}
}

// TestTracerRingWrapAround fills the ring past capacity and checks that
// exactly the newest `capacity` events survive, in order.
func TestTracerRingWrapAround(t *testing.T) {
	const capEvents = 8
	tr := NewTracer(capEvents)
	const total = 20
	for i := 0; i < total; i++ {
		tr.Point(0, fmt.Sprintf("ev%d", i), "")
	}
	if got := tr.Recorded(); got != total {
		t.Fatalf("recorded = %d, want %d", got, total)
	}
	evs := tr.Events(0)
	if len(evs) != capEvents {
		t.Fatalf("surviving events = %d, want %d", len(evs), capEvents)
	}
	// The survivors must be ev12..ev19, oldest first.
	for i, ev := range evs {
		want := fmt.Sprintf("ev%d", total-capEvents+i)
		if ev.Name != want {
			t.Fatalf("event[%d] = %s, want %s", i, ev.Name, want)
		}
	}
	// Sequence numbers must be strictly increasing across the window.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("seq not increasing: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	// Limit returns the newest k events.
	last3 := tr.Events(3)
	if len(last3) != 3 || last3[2].Name != "ev19" {
		t.Fatalf("Events(3) = %+v", last3)
	}
}

func TestTracerCapacityClamp(t *testing.T) {
	tr := NewTracer(0)
	tr.Point(0, "a", "")
	tr.Point(0, "b", "")
	evs := tr.Events(0)
	if len(evs) != 1 || evs[0].Name != "b" {
		t.Fatalf("clamped ring events = %+v", evs)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			trace := tr.NextTraceID()
			for i := 0; i < 500; i++ {
				sp := tr.Start(trace, "op")
				sp.End("")
				if i%50 == 0 {
					_ = tr.Events(0)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Recorded(); got != 8*500 {
		t.Fatalf("recorded = %d, want %d", got, 8*500)
	}
}

func TestSlowLogThresholdAndWrap(t *testing.T) {
	sl := NewSlowLog(3, 10*time.Millisecond)
	if sl.Observe("fast", 5*time.Millisecond, 1, "", 0) {
		t.Fatal("below-threshold query must not record")
	}
	for i := 0; i < 5; i++ {
		if !sl.Observe(fmt.Sprintf("q%d", i), 20*time.Millisecond, i, "scan", uint64(i+100)) {
			t.Fatal("slow query must record")
		}
	}
	entries := sl.Entries()
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(entries))
	}
	if entries[0].Query != "q2" || entries[2].Query != "q4" {
		t.Fatalf("ring kept wrong window: %+v", entries)
	}
	if entries[2].Trace != 104 {
		t.Fatalf("entry trace = %d, want 104", entries[2].Trace)
	}
	if !strings.Contains(sl.String(), "trace: 104") {
		t.Fatalf("String() must surface trace ids: %q", sl.String())
	}
	if sl.Total() != 5 {
		t.Fatalf("total = %d, want 5", sl.Total())
	}
	sl.SetThreshold(0)
	if sl.Observe("any", time.Hour, 0, "", 0) {
		t.Fatal("zero threshold must disable logging")
	}
	if sl.Threshold() != 0 {
		t.Fatal("threshold read-back")
	}
	if !strings.Contains(sl.String(), "q4") {
		t.Fatalf("String() = %q", sl.String())
	}
}

func TestSlowLogTruncatesLongQueries(t *testing.T) {
	sl := NewSlowLog(2, time.Nanosecond)
	long := strings.Repeat("x", 2*maxSlowQueryText)
	sl.Observe(long, time.Second, 0, "", 0)
	e := sl.Entries()[0]
	if len(e.Query) > maxSlowQueryText+len("…") {
		t.Fatalf("query not truncated: %d bytes", len(e.Query))
	}
}

func TestSetDebugVars(t *testing.T) {
	SetDebugVars(func() any { return map[string]any{"x": 1} })
	SetDebugVars(nil) // detach must not panic and later publishes must work
	SetDebugVars(func() any { return nil })
}
