package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanParentChildLinks(t *testing.T) {
	tr := NewTracer(32)
	trace := tr.NextTraceID()
	root := tr.Start(trace, "query")
	if root.ID() == 0 || root.TraceID() != trace {
		t.Fatalf("root span id=%d trace=%d", root.ID(), root.TraceID())
	}
	queue := root.Child("queue")
	queue.End("admitted")
	exec := root.Child("exec")
	storage := exec.Child("storage")
	storage.Account(Resources{Pages: 7, ChainSteps: 3, Atoms: 2})
	storage.Account(Resources{Pages: 1})
	storage.End("")
	exec.End("rows=5")
	root.End("")

	evs := tr.Trace(trace)
	if len(evs) != 4 {
		t.Fatalf("trace events = %d, want 4", len(evs))
	}
	byName := map[string]Event{}
	for _, ev := range evs {
		byName[ev.Name] = ev
	}
	if byName["queue"].Parent != root.ID() || byName["exec"].Parent != root.ID() {
		t.Fatal("queue and exec must be children of root")
	}
	if byName["storage"].Parent != byName["exec"].Span {
		t.Fatal("storage must be a child of exec")
	}
	if got := byName["storage"].Res; got != (Resources{Pages: 8, ChainSteps: 3, Atoms: 2}) {
		t.Fatalf("storage resources = %+v", got)
	}
	out := FormatTrace(evs)
	if !strings.Contains(out, "pages=8") || !strings.Contains(out, "storage") {
		t.Fatalf("FormatTrace = %q", out)
	}
	// Other traces must not bleed into the lookup.
	if evs := tr.Trace(trace + 999); evs != nil {
		t.Fatalf("unknown trace returned %d events", len(evs))
	}
}

// TestSpanRingWrapWithLiveParents overruns the ring while a parent span is
// still open: ending it afterwards must record cleanly even though every
// child event has been evicted, and FormatTrace must promote orphaned
// children to the root level rather than dropping them.
func TestSpanRingWrapWithLiveParents(t *testing.T) {
	tr := NewTracer(4)
	trace := tr.NextTraceID()
	root := tr.Start(trace, "root")
	for i := 0; i < 10; i++ {
		c := root.Child(fmt.Sprintf("child%d", i))
		c.End("")
	}
	root.End("") // children 0..5 are long gone from the ring
	evs := tr.Trace(trace)
	if len(evs) != 4 {
		t.Fatalf("surviving events = %d, want 4", len(evs))
	}
	if evs[len(evs)-1].Name != "root" {
		t.Fatalf("last event = %q, want root", evs[len(evs)-1].Name)
	}
	out := FormatTrace(evs)
	for _, want := range []string{"root", "child9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatTrace missing %q: %q", want, out)
		}
	}
	// A child whose parent was evicted renders at the root level.
	orphan := []Event{{Trace: trace, Span: 42, Parent: 41, Name: "orphan", Dur: time.Millisecond}}
	if got := FormatTrace(orphan); !strings.Contains(got, "orphan") {
		t.Fatalf("orphaned span dropped: %q", got)
	}
}

// TestNilTracerAndSpanNoOps pins the nil-safe handle contract: every
// method on a nil *Tracer or nil *Span must be a no-op, matching the
// registry's nil counter/gauge/histogram behavior.
func TestNilTracerAndSpanNoOps(t *testing.T) {
	var tr *Tracer
	if tr.NextTraceID() != 0 {
		t.Fatal("nil tracer must allocate trace id 0")
	}
	sp := tr.Start(1, "x")
	if sp != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	child := sp.Child("y")
	if child != nil {
		t.Fatal("nil span must hand out nil children")
	}
	sp.Account(Resources{Pages: 1})
	sp.End("attrs")
	if sp.ID() != 0 || sp.TraceID() != 0 {
		t.Fatal("nil span ids must be 0")
	}
	tr.Point(1, "p", "")
	if tr.EmitSpan(1, 0, "e", time.Now(), time.Second, "", Resources{}) != 0 {
		t.Fatal("nil tracer EmitSpan must return 0")
	}
	if tr.Trace(1) != nil || tr.TraceIDs(0) != nil || tr.Events(0) != nil {
		t.Fatal("nil tracer lookups must return nil")
	}
	var res *Resources
	res.Add(Resources{Pages: 1}) // nil *Resources is a no-op sink
}

// TestSpanConcurrentEmission hammers one tracer from many goroutines; run
// under -race this pins the span store's synchronization.
func TestSpanConcurrentEmission(t *testing.T) {
	tr := NewTracer(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			trace := tr.NextTraceID()
			for i := 0; i < 300; i++ {
				root := tr.Start(trace, "root")
				c := root.Child("child")
				c.Account(Resources{Pages: 1})
				c.End("")
				root.End("")
				if i%64 == 0 {
					_ = tr.Trace(trace)
					_ = tr.TraceIDs(8)
					_ = FormatTrace(tr.Trace(trace))
				}
			}
		}()
	}
	wg.Wait()
	if got := tr.Recorded(); got != 8*300*2 {
		t.Fatalf("recorded = %d, want %d", got, 8*300*2)
	}
}

func TestPrometheusTextGolden(t *testing.T) {
	reg := New()
	reg.Counter("wal.appends").Add(3)
	reg.Counter("heap.fetches").Add(12)
	reg.Gauge("server.conns").Set(2)
	h := reg.Histogram("query.ns")
	h.Record(0)
	h.Record(1)
	h.Record(1)
	h.Record(1)

	want := `# TYPE tcodm_heap_fetches counter
tcodm_heap_fetches 12
# TYPE tcodm_wal_appends counter
tcodm_wal_appends 3
# TYPE tcodm_server_conns gauge
tcodm_server_conns 2
# TYPE tcodm_query_ns summary
tcodm_query_ns{quantile="0.5"} 1
tcodm_query_ns{quantile="0.95"} 1
tcodm_query_ns{quantile="0.99"} 1
tcodm_query_ns_sum 3
tcodm_query_ns_count 4
`
	if got := reg.PrometheusText(); got != want {
		t.Fatalf("PrometheusText golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	var nilReg *Registry
	if nilReg.PrometheusText() != "" {
		t.Fatal("nil registry must render empty")
	}
}

// TestDebugServerLifecycle starts a debug server, smokes the /metrics and
// /debug/trace endpoints, and verifies Close releases the listener.
func TestDebugServerLifecycle(t *testing.T) {
	reg := New()
	reg.Counter("test.hits").Add(5)
	tr := NewTracer(16)
	trace := tr.NextTraceID()
	sp := tr.Start(trace, "query")
	sp.End("rows=1")
	SetMetricsSource(reg)
	SetTraceSource(tr)
	defer SetMetricsSource(nil)
	defer SetTraceSource(nil)

	dbg, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + dbg.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "tcodm_test_hits 5") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/debug/trace"); code != 200 || !strings.Contains(body, fmt.Sprint(trace)) {
		t.Fatalf("/debug/trace = %d %q", code, body)
	}
	if code, body := get(fmt.Sprintf("/debug/trace/%d", trace)); code != 200 || !strings.Contains(body, "query") {
		t.Fatalf("/debug/trace/%d = %d %q", trace, code, body)
	}
	if code, _ := get(fmt.Sprintf("/debug/trace/%d", trace+100)); code != 404 {
		t.Fatalf("missing trace must 404, got %d", code)
	}
	if code, _ := get("/debug/trace/notanumber"); code != 400 {
		t.Fatalf("bad trace id must 400, got %d", code)
	}

	if err := dbg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := dbg.Close(); err != nil {
		t.Fatalf("second Close must be idempotent: %v", err)
	}
	if _, err := http.Get("http://" + dbg.Addr() + "/metrics"); err == nil {
		t.Fatal("listener must be released after Close")
	}
	var nilDbg *DebugServer
	if nilDbg.Addr() != "" || nilDbg.Close() != nil {
		t.Fatal("nil DebugServer must no-op")
	}
}
