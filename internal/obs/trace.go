package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one recorded trace event: a completed span or a point annotation.
type Event struct {
	Seq   uint64        // global sequence number (monotonic per tracer)
	Trace uint64        // trace (query/txn) id, 0 = unattributed
	Name  string        // span or event name, e.g. "wal.fsync"
	Start time.Time     // span start (or event time for point events)
	Dur   time.Duration // span duration, 0 for point events
	Attrs string        // free-form "k=v k=v" detail, may be empty
}

// Tracer records completed spans into a bounded ring buffer. When the ring
// is full the oldest events are overwritten; Events() returns the surviving
// window in order. A nil *Tracer is a valid no-op.
type Tracer struct {
	mu    sync.Mutex
	ring  []Event
	next  uint64 // total events ever recorded; ring index = next % len(ring)
	seq   atomic.Uint64
	trace atomic.Uint64 // trace id allocator
}

// NewTracer creates a tracer whose ring holds capacity events.
// capacity < 1 is clamped to 1.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// NextTraceID allocates a fresh nonzero trace id.
func (t *Tracer) NextTraceID() uint64 {
	if t == nil {
		return 0
	}
	return t.trace.Add(1)
}

// record appends an event to the ring, overwriting the oldest when full.
func (t *Tracer) record(ev Event) {
	if t == nil {
		return
	}
	ev.Seq = t.seq.Add(1)
	t.mu.Lock()
	t.ring[t.next%uint64(len(t.ring))] = ev
	t.next++
	t.mu.Unlock()
}

// Point records an instantaneous event.
func (t *Tracer) Point(trace uint64, name, attrs string) {
	if t == nil {
		return
	}
	t.record(Event{Trace: trace, Name: name, Start: time.Now(), Attrs: attrs})
}

// Span is an in-flight traced operation. End records it. A zero Span
// (from a nil Tracer) is a valid no-op.
type Span struct {
	t     *Tracer
	trace uint64
	name  string
	start time.Time
}

// Start opens a span attributed to the given trace id.
func (t *Tracer) Start(trace uint64, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, trace: trace, name: name, start: time.Now()}
}

// End completes the span with optional attrs.
func (s Span) End(attrs string) {
	if s.t == nil {
		return
	}
	s.t.record(Event{
		Trace: s.trace,
		Name:  s.name,
		Start: s.start,
		Dur:   time.Since(s.start),
		Attrs: attrs,
	})
}

// Events returns the buffered events oldest-first. Limit <= 0 returns all.
func (t *Tracer) Events(limit int) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.ring))
	count := t.next
	if count > n {
		count = n
	}
	if limit > 0 && uint64(limit) < count {
		count = uint64(limit)
	}
	out := make([]Event, 0, count)
	// Oldest surviving event is at index next-min(next,len); we return the
	// newest `count` of those, oldest-first.
	start := t.next - count
	for i := uint64(0); i < count; i++ {
		out = append(out, t.ring[(start+i)%n])
	}
	return out
}

// Recorded returns the total number of events ever recorded (including
// overwritten ones).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// String renders the buffered events for human consumption.
func (t *Tracer) String() string {
	evs := t.Events(0)
	var sb strings.Builder
	for _, ev := range evs {
		if ev.Dur > 0 {
			fmt.Fprintf(&sb, "#%d trace=%d %-20s %s", ev.Seq, ev.Trace, ev.Name, ev.Dur)
		} else {
			fmt.Fprintf(&sb, "#%d trace=%d %-20s point", ev.Seq, ev.Trace, ev.Name)
		}
		if ev.Attrs != "" {
			sb.WriteString(" " + ev.Attrs)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
