package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one recorded trace event: a completed span or a point annotation.
type Event struct {
	Seq    uint64        // global sequence number (monotonic per tracer)
	Trace  uint64        // trace (query/txn) id, 0 = unattributed
	Span   uint64        // span id, 0 for point events
	Parent uint64        // parent span id, 0 for roots and points
	Name   string        // span or event name, e.g. "wal.fsync"
	Start  time.Time     // span start (or event time for point events)
	Dur    time.Duration // span duration, 0 for point events
	Attrs  string        // free-form "k=v k=v" detail, may be empty
	Res    Resources     // exact resource account, zero unless charged
}

// Tracer is a bounded span store: completed spans and point events land in
// a ring buffer with trace/span/parent links, so a whole query's span tree
// can be reassembled by trace id as long as it survives in the window.
// When the ring is full the oldest events are overwritten; Events() returns
// the surviving window in order. A nil *Tracer is a valid no-op.
type Tracer struct {
	mu    sync.Mutex
	ring  []Event
	next  uint64 // total events ever recorded; ring index = next % len(ring)
	seq   atomic.Uint64
	trace atomic.Uint64 // trace id allocator
	span  atomic.Uint64 // span id allocator
}

// NewTracer creates a tracer whose ring holds capacity events.
// capacity < 1 is clamped to 1.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// NextTraceID allocates a fresh nonzero trace id.
func (t *Tracer) NextTraceID() uint64 {
	if t == nil {
		return 0
	}
	return t.trace.Add(1)
}

// nextSpanID allocates a fresh nonzero span id.
func (t *Tracer) nextSpanID() uint64 {
	return t.span.Add(1)
}

// record appends an event to the ring, overwriting the oldest when full.
func (t *Tracer) record(ev Event) {
	if t == nil {
		return
	}
	ev.Seq = t.seq.Add(1)
	t.mu.Lock()
	t.ring[t.next%uint64(len(t.ring))] = ev
	t.next++
	t.mu.Unlock()
}

// Point records an instantaneous event.
func (t *Tracer) Point(trace uint64, name, attrs string) {
	if t == nil {
		return
	}
	t.record(Event{Trace: trace, Name: name, Start: time.Now(), Attrs: attrs})
}

// Span is an in-flight traced operation with a place in the trace tree.
// End records it. A nil *Span (from a nil Tracer) is a valid no-op, so
// instrumented code never branches on "tracing enabled".
type Span struct {
	t      *Tracer
	trace  uint64
	id     uint64
	parent uint64
	name   string
	start  time.Time
	res    Resources
}

// Start opens a root-level span attributed to the given trace id.
func (t *Tracer) Start(trace uint64, name string) *Span {
	return t.StartSpan(trace, 0, name)
}

// StartSpan opens a span under an explicit parent span id (0 = root).
func (t *Tracer) StartSpan(trace, parent uint64, name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, trace: trace, id: t.nextSpanID(), parent: parent, name: name, start: time.Now()}
}

// Child opens a sub-span of s in the same trace.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.StartSpan(s.trace, s.id, name)
}

// ID returns the span id (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// TraceID returns the trace id the span belongs to (0 for a nil span).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.trace
}

// Account charges resources to the span; they are recorded when it ends.
func (s *Span) Account(r Resources) {
	if s == nil {
		return
	}
	s.res.Add(r)
}

// End completes the span with optional attrs.
func (s *Span) End(attrs string) {
	if s == nil || s.t == nil {
		return
	}
	s.t.record(Event{
		Trace:  s.trace,
		Span:   s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		Dur:    time.Since(s.start),
		Attrs:  attrs,
		Res:    s.res,
	})
}

// EmitSpan records an already-measured span (used by the executor, which
// learns per-worker and per-operator durations only after the parallel
// barrier). It allocates and returns the span id.
func (t *Tracer) EmitSpan(trace, parent uint64, name string, start time.Time, dur time.Duration, attrs string, res Resources) uint64 {
	if t == nil {
		return 0
	}
	id := t.nextSpanID()
	t.record(Event{
		Trace:  trace,
		Span:   id,
		Parent: parent,
		Name:   name,
		Start:  start,
		Dur:    dur,
		Attrs:  attrs,
		Res:    res,
	})
	return id
}

// Events returns the buffered events oldest-first. Limit <= 0 returns all.
func (t *Tracer) Events(limit int) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.ring))
	count := t.next
	if count > n {
		count = n
	}
	if limit > 0 && uint64(limit) < count {
		count = uint64(limit)
	}
	out := make([]Event, 0, count)
	// Oldest surviving event is at index next-min(next,len); we return the
	// newest `count` of those, oldest-first.
	start := t.next - count
	for i := uint64(0); i < count; i++ {
		out = append(out, t.ring[(start+i)%n])
	}
	return out
}

// Trace returns the surviving events of one trace, oldest-first. The ring
// may have evicted part of a tree; callers treat the result as a window.
func (t *Tracer) Trace(id uint64) []Event {
	if t == nil || id == 0 {
		return nil
	}
	var out []Event
	for _, ev := range t.Events(0) {
		if ev.Trace == id {
			out = append(out, ev)
		}
	}
	return out
}

// TraceIDs returns the distinct trace ids present in the ring, most
// recently recorded first. Limit <= 0 returns all.
func (t *Tracer) TraceIDs(limit int) []uint64 {
	if t == nil {
		return nil
	}
	evs := t.Events(0)
	seen := map[uint64]bool{}
	var out []uint64
	for i := len(evs) - 1; i >= 0; i-- {
		id := evs[i].Trace
		if id == 0 || seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Recorded returns the total number of events ever recorded (including
// overwritten ones).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// String renders the buffered events for human consumption.
func (t *Tracer) String() string {
	evs := t.Events(0)
	var sb strings.Builder
	for _, ev := range evs {
		if ev.Dur > 0 {
			fmt.Fprintf(&sb, "#%d trace=%d %-20s %s", ev.Seq, ev.Trace, ev.Name, ev.Dur)
		} else {
			fmt.Fprintf(&sb, "#%d trace=%d %-20s point", ev.Seq, ev.Trace, ev.Name)
		}
		if ev.Attrs != "" {
			sb.WriteString(" " + ev.Attrs)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FormatTrace renders one trace's events as an indented span tree. Spans
// whose parent was evicted from the ring (or lives in another process)
// render at the root level; point events render under their trace root.
// Children sort by record order (sequence number), which for spans is
// completion order.
func FormatTrace(evs []Event) string {
	if len(evs) == 0 {
		return "(no events)\n"
	}
	byParent := map[uint64][]Event{}
	spans := map[uint64]bool{}
	for _, ev := range evs {
		if ev.Span != 0 {
			spans[ev.Span] = true
		}
	}
	var roots []Event
	for _, ev := range evs {
		if ev.Parent != 0 && spans[ev.Parent] {
			byParent[ev.Parent] = append(byParent[ev.Parent], ev)
		} else {
			roots = append(roots, ev)
		}
	}
	sortEvents := func(s []Event) {
		sort.Slice(s, func(i, j int) bool { return s[i].Seq < s[j].Seq })
	}
	sortEvents(roots)
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %d (%d events)\n", evs[0].Trace, len(evs))
	var render func(ev Event, depth int)
	render = func(ev Event, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		if ev.Span == 0 {
			fmt.Fprintf(&sb, "* %s", ev.Name)
		} else {
			fmt.Fprintf(&sb, "- %s %s", ev.Name, ev.Dur)
		}
		if !ev.Res.IsZero() {
			sb.WriteString(" [" + ev.Res.String() + "]")
		}
		if ev.Attrs != "" {
			sb.WriteString(" " + ev.Attrs)
		}
		sb.WriteByte('\n')
		kids := byParent[ev.Span]
		sortEvents(kids)
		for _, k := range kids {
			render(k, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 1)
	}
	return sb.String()
}
