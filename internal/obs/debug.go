package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on http.DefaultServeMux
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// debugVars holds the process-wide callback that produces the engine metric
// snapshot published under /debug/vars as "tcodm". Commands that open several
// engines in sequence (tcobench) re-point it at each engine; the last opened
// engine wins, which is what a live debugger wants to look at.
var debugVars atomic.Pointer[func() any]

// publishOnce guards expvar.Publish, which panics on duplicate names.
var publishOnce sync.Once

// SetDebugVars installs fn as the producer of the "tcodm" expvar. Passing
// nil detaches the current producer (the var then reports null).
func SetDebugVars(fn func() any) {
	if fn == nil {
		debugVars.Store(nil)
		return
	}
	debugVars.Store(&fn)
	publishOnce.Do(func() {
		expvar.Publish("tcodm", expvar.Func(func() any {
			p := debugVars.Load()
			if p == nil {
				return nil
			}
			return (*p)()
		}))
	})
}

// metricsSrc and traceSrc are the process-wide sources behind /metrics and
// /debug/trace. Like debugVars, the last engine to publish wins.
var (
	metricsSrc  atomic.Pointer[Registry]
	traceSrc    atomic.Pointer[Tracer]
	handlerOnce sync.Once // DefaultServeMux panics on duplicate patterns
)

// SetMetricsSource points /metrics at reg (nil detaches).
func SetMetricsSource(reg *Registry) {
	metricsSrc.Store(reg)
	registerDebugHandlers()
}

// SetTraceSource points /debug/trace at t (nil detaches).
func SetTraceSource(t *Tracer) {
	traceSrc.Store(t)
	registerDebugHandlers()
}

// registerDebugHandlers installs /metrics and /debug/trace/ on the default
// mux exactly once per process.
func registerDebugHandlers() {
	handlerOnce.Do(func() {
		http.HandleFunc("/metrics", serveMetrics)
		http.HandleFunc("/debug/trace", serveTraceIndex)
		http.HandleFunc("/debug/trace/", serveTrace)
	})
}

// serveMetrics renders the active registry in Prometheus text format.
func serveMetrics(w http.ResponseWriter, _ *http.Request) {
	reg := metricsSrc.Load()
	if reg == nil {
		http.Error(w, "metrics source not attached", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, reg.PrometheusText())
}

// serveTraceIndex lists the trace ids surviving in the span-store ring.
func serveTraceIndex(w http.ResponseWriter, _ *http.Request) {
	tr := traceSrc.Load()
	if tr == nil {
		http.Error(w, "trace source not attached", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	ids := tr.TraceIDs(0)
	fmt.Fprintf(w, "%d trace(s) in window; GET /debug/trace/<id>\n", len(ids))
	for _, id := range ids {
		fmt.Fprintf(w, "%d\n", id)
	}
}

// serveTrace renders one trace's span tree: GET /debug/trace/<id>.
func serveTrace(w http.ResponseWriter, r *http.Request) {
	tr := traceSrc.Load()
	if tr == nil {
		http.Error(w, "trace source not attached", http.StatusServiceUnavailable)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	if rest == "" {
		serveTraceIndex(w, r)
		return
	}
	id, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		http.Error(w, "trace id must be a decimal uint64", http.StatusBadRequest)
		return
	}
	evs := tr.Trace(id)
	if len(evs) == 0 {
		http.Error(w, "trace not found (evicted from the ring or never recorded)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, FormatTrace(evs))
}

// DebugServer is a running debug HTTP endpoint. Close shuts it down and
// releases the listener; tests use it so -race runs don't accumulate
// servers for the life of the process.
type DebugServer struct {
	addr      string
	srv       *http.Server
	closeOnce sync.Once
	closeErr  error
}

// Addr returns the bound address (useful when listening on ":0").
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.addr
}

// Close shuts the server down and closes its listener. Idempotent.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	d.closeOnce.Do(func() {
		d.closeErr = d.srv.Close()
	})
	return d.closeErr
}

// StartDebugServer listens on addr and serves expvar (/debug/vars), pprof
// (/debug/pprof/*), Prometheus metrics (/metrics), and trace lookup
// (/debug/trace/<id>) from http.DefaultServeMux in a background goroutine.
// The returned handle exposes the bound address and a Close that stops the
// server and releases the listener.
func StartDebugServer(addr string) (*DebugServer, error) {
	registerDebugHandlers()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	go func() {
		_ = srv.Serve(ln)
	}()
	return &DebugServer{addr: ln.Addr().String(), srv: srv}, nil
}
