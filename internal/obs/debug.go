package obs

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on http.DefaultServeMux
	"sync"
	"sync/atomic"
)

// debugVars holds the process-wide callback that produces the engine metric
// snapshot published under /debug/vars as "tcodm". Commands that open several
// engines in sequence (tcobench) re-point it at each engine; the last opened
// engine wins, which is what a live debugger wants to look at.
var debugVars atomic.Pointer[func() any]

// publishOnce guards expvar.Publish, which panics on duplicate names.
var publishOnce sync.Once

// SetDebugVars installs fn as the producer of the "tcodm" expvar. Passing
// nil detaches the current producer (the var then reports null).
func SetDebugVars(fn func() any) {
	if fn == nil {
		debugVars.Store(nil)
		return
	}
	debugVars.Store(&fn)
	publishOnce.Do(func() {
		expvar.Publish("tcodm", expvar.Func(func() any {
			p := debugVars.Load()
			if p == nil {
				return nil
			}
			return (*p)()
		}))
	})
}

// StartDebugServer listens on addr and serves expvar (/debug/vars) and pprof
// (/debug/pprof/*) from http.DefaultServeMux in a background goroutine. It
// returns the bound address (useful with ":0") or an error if the listen
// fails. The server runs until the process exits.
func StartDebugServer(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
