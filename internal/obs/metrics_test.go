package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("counter after reset = %d, want 0", got)
	}

	g := NewGauge()
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	var tr *Tracer
	var sl *SlowLog
	c.Inc()
	c.Add(3)
	c.Reset()
	g.Set(1)
	g.Add(1)
	h.Record(1)
	h.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must read zero")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	if r.Counters() != nil || r.Snapshot() != nil {
		t.Fatal("nil registry snapshots must be nil")
	}
	sp := tr.Start(1, "x")
	sp.End("")
	tr.Point(1, "x", "")
	if tr.Events(0) != nil || tr.Recorded() != 0 {
		t.Fatal("nil tracer must be empty")
	}
	if sl.Observe("q", time.Second, 0, "", 0) {
		t.Fatal("nil slowlog must not record")
	}
	_ = r.String()
	_ = sl.String()
}

// TestHistogramQuantileExact checks quantiles against a known distribution
// where every observation is the lower bound of its own power-of-two bucket,
// so interpolation is exact and the expected quantile values are computable
// by hand.
func TestHistogramQuantileExact(t *testing.T) {
	h := NewHistogram()
	// 100 observations: 50x value 1 (bucket [1,2)), 45x value 64
	// (bucket [64,128)), 5x value 1024 (bucket [1024,2048)).
	for i := 0; i < 50; i++ {
		h.Record(1)
	}
	for i := 0; i < 45; i++ {
		h.Record(64)
	}
	for i := 0; i < 5; i++ {
		h.Record(1024)
	}

	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	wantSum := uint64(50*1 + 45*64 + 5*1024)
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	if s.Max != 1024 {
		t.Fatalf("max = %d, want 1024", s.Max)
	}

	// Midpoint-rank interpolation: rank r of c in-bucket observations sits
	// at fraction (r-0.5)/c of the bucket width [lo, hi).
	// p50: rank 50, bucket [1,2), cum=0, frac=(50-0.5)/50=0.99
	// → 1 + floor(0.99*1) = 1 — matches the actual observed value.
	if got := h.Quantile(0.50); got != 1 {
		t.Fatalf("p50 = %d, want 1", got)
	}
	// p95: rank 95, bucket [64,128), cum=50, frac=(45-0.5)/45
	// → 64 + floor(0.98889*64) = 64 + 63 = 127.
	if got := h.Quantile(0.95); got != 127 {
		t.Fatalf("p95 = %d, want 127", got)
	}
	// p99: rank 99, bucket [1024,2048), cum=95, frac=(4-0.5)/5=0.7
	// → 1024 + floor(0.7*1024) = 1024 + 716 = 1740.
	if got := h.Quantile(0.99); got != 1740 {
		t.Fatalf("p99 = %d, want 1740", got)
	}
	// p10: rank 10, bucket [1,2), frac=(10-0.5)/50=0.19 → 1 + 0 = 1.
	if got := h.Quantile(0.10); got != 1 {
		t.Fatalf("p10 = %d, want 1", got)
	}
}

func TestHistogramSnapshotClampsToMax(t *testing.T) {
	h := NewHistogram()
	// A single observation: interpolation would report the bucket's upper
	// bound, but Snapshot clamps quantiles to the true max.
	h.Record(1000) // bucket [512, 2048)? no: bits.Len64(1000)=10 → [512,1024)
	s := h.Snapshot()
	if s.P50 > s.Max {
		t.Fatalf("p50 %d exceeds max %d", s.P50, s.Max)
	}
	if s.P99 > s.Max {
		t.Fatalf("p99 %d exceeds max %d", s.P99, s.Max)
	}
}

func TestHistogramZeroAndEmpty(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
	h.Record(0)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("all-zero quantile = %d, want 0", got)
	}
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("zero snapshot = %+v", s)
	}
}

func TestHistogramObserveNegativeClamps(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5 * time.Second)
	if h.Count() != 1 {
		t.Fatal("negative observation must still count (as 0)")
	}
	if s := h.Snapshot(); s.Max != 0 {
		t.Fatalf("negative clamped max = %d, want 0", s.Max)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := New()
	c1 := r.Counter("a")
	c2 := r.Counter("a")
	if c1 != c2 {
		t.Fatal("same name must return same counter")
	}
	c1.Add(7)
	r.Gauge("g").Set(-2)
	r.Histogram("h").Record(100)

	counters := r.Counters()
	if counters["a"] != 7 {
		t.Fatalf("counters[a] = %d, want 7", counters["a"])
	}
	snap := r.Snapshot()
	if snap["a"].(uint64) != 7 {
		t.Fatalf("snapshot[a] = %v", snap["a"])
	}
	if snap["g"].(int64) != -2 {
		t.Fatalf("snapshot[g] = %v", snap["g"])
	}
	hm := snap["h"].(map[string]any)
	if hm["count"].(uint64) != 1 {
		t.Fatalf("snapshot[h].count = %v", hm["count"])
	}
	if r.String() == "" {
		t.Fatal("String must render something")
	}
}

// TestConcurrentUpdates exercises counters and histograms from many
// goroutines; run with -race to validate the synchronization story.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("lat")
			g := r.Gauge("level")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Record(uint64(id*1000 + i))
				g.Add(1)
				if i%100 == 0 {
					_ = r.Snapshot() // concurrent reads
					_ = h.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("level").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
}
