// Package obs is the engine-wide observability layer: a zero-dependency
// metrics registry (atomic counters, gauges, fixed-bucket latency
// histograms with quantile snapshots), a bounded ring-buffer trace
// recorder, and a structured slow-query log.
//
// Every handle type is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, *Tracer, or *SlowLog are no-ops, so instrumented code needs
// no branching — "metrics off" is expressed by handing out nil handles,
// which compiles down to one predictable branch per event. Handles created
// outside a Registry (NewCounter, NewHistogram) count but are not exported
// anywhere; components use them as defaults so their stats accessors keep
// working even when no registry is attached.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// --- Counter ---------------------------------------------------------------

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// NewCounter creates a standalone (unregistered) counter.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter (benchmark support).
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.v.Store(0)
}

// --- Gauge -----------------------------------------------------------------

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// NewGauge creates a standalone (unregistered) gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// --- Histogram -------------------------------------------------------------

// histBuckets is the number of power-of-two buckets. Bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i); bucket 0
// counts zeros. 64 buckets cover the whole uint64 range, so nanosecond
// latencies from 1ns to centuries land without configuration.
const histBuckets = 65

// Histogram is a fixed-bucket histogram over non-negative integer values
// (typically nanoseconds). Updates are lock-free atomic adds; snapshots are
// racy-consistent, which is fine for monitoring.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Uint64
	n      atomic.Uint64
	max    atomic.Uint64
}

// NewHistogram creates a standalone (unregistered) histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int { return bits.Len64(v) }

// bucketBounds returns the [lo, hi) value range of bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 1
	}
	return 1 << (i - 1), 1 << i
}

// Record adds one observation of value v.
func (h *Histogram) Record(v uint64) {
	if h == nil {
		return
	}
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Observe records a duration in nanoseconds.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// HistSnapshot is a consistent-enough view of a histogram.
type HistSnapshot struct {
	Count uint64
	Sum   uint64
	Max   uint64
	P50   uint64
	P95   uint64
	P99   uint64
}

// Mean returns the average observed value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot captures counts and quantile estimates.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistSnapshot{Count: total, Sum: h.sum.Load(), Max: h.max.Load()}
	s.P50 = quantile(counts[:], total, 0.50)
	s.P95 = quantile(counts[:], total, 0.95)
	s.P99 = quantile(counts[:], total, 0.99)
	if s.P50 > s.Max && s.Max > 0 {
		s.P50 = s.Max
	}
	if s.P95 > s.Max && s.Max > 0 {
		s.P95 = s.Max
	}
	if s.P99 > s.Max && s.Max > 0 {
		s.P99 = s.Max
	}
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the containing bucket.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return quantile(counts[:], total, q)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// quantile finds the value at rank ceil(q*total) by walking the buckets and
// interpolating linearly inside the containing bucket.
func quantile(counts []uint64, total uint64, q float64) uint64 {
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketBounds(i)
			// Midpoint-rank interpolation: rank r of the c observations in
			// this bucket sits at fraction (r-0.5)/c of the bucket width,
			// which keeps the estimate strictly inside [lo, hi).
			frac := (float64(rank-cum) - 0.5) / float64(c)
			return lo + uint64(frac*float64(hi-lo))
		}
		cum += c
	}
	lo, _ := bucketBounds(len(counts) - 1)
	return lo
}

// --- Registry --------------------------------------------------------------

// Registry is a named collection of metrics. All accessors are get-or-create
// and nil-safe: a nil *Registry hands out nil handles, whose methods no-op —
// the engine's "metrics disabled" mode.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = NewCounter()
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = NewGauge()
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Counters returns a snapshot of every counter's value.
func (r *Registry) Counters() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// Snapshot returns every metric's current value in a JSON-friendly map:
// counters as uint64, gauges as int64, histograms as sub-maps with count,
// sum, mean, max, and p50/p95/p99.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := struct {
		counters map[string]*Counter
		gauges   map[string]*Gauge
		hists    map[string]*Histogram
	}{
		counters: make(map[string]*Counter, len(r.counters)),
		gauges:   make(map[string]*Gauge, len(r.gauges)),
		hists:    make(map[string]*Histogram, len(r.hists)),
	}
	for k, v := range r.counters {
		names.counters[k] = v
	}
	for k, v := range r.gauges {
		names.gauges[k] = v
	}
	for k, v := range r.hists {
		names.hists[k] = v
	}
	r.mu.Unlock()

	out := map[string]any{}
	for name, c := range names.counters {
		out[name] = c.Value()
	}
	for name, g := range names.gauges {
		out[name] = g.Value()
	}
	for name, h := range names.hists {
		s := h.Snapshot()
		out[name] = map[string]any{
			"count": s.Count, "sum": s.Sum, "mean": s.Mean(),
			"max": s.Max, "p50": s.P50, "p95": s.P95, "p99": s.P99,
		}
	}
	return out
}

// String renders a sorted, human-readable dump of every metric.
func (r *Registry) String() string {
	if r == nil {
		return "(metrics disabled)\n"
	}
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		switch v := snap[name].(type) {
		case map[string]any:
			// Histograms named *_ns (or *.ns) hold durations; the rest hold
			// plain quantities (chain depths, group sizes) and print as
			// numbers.
			fmtVal := plainStr
			if strings.HasSuffix(name, "_ns") || strings.HasSuffix(name, ".ns") {
				fmtVal = durStr
			}
			fmt.Fprintf(&sb, "%-28s count=%v mean=%s p50=%s p95=%s p99=%s max=%s\n",
				name, v["count"], fmtVal(v["mean"]), fmtVal(v["p50"]), fmtVal(v["p95"]), fmtVal(v["p99"]), fmtVal(v["max"]))
		default:
			fmt.Fprintf(&sb, "%-28s %v\n", name, v)
		}
	}
	return sb.String()
}

// plainStr renders a histogram statistic as a bare quantity.
func plainStr(v any) string {
	if f, ok := v.(float64); ok {
		return fmt.Sprintf("%.1f", f)
	}
	return fmt.Sprint(v)
}

// durStr formats a nanosecond quantity human-readably.
func durStr(v any) string {
	var ns float64
	switch x := v.(type) {
	case uint64:
		ns = float64(x)
	case float64:
		ns = x
	default:
		return fmt.Sprint(v)
	}
	switch {
	case ns < 1e3:
		return fmt.Sprintf("%.0fns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%.2fms", ns/1e6)
	default:
		return fmt.Sprintf("%.2fs", ns/1e9)
	}
}
