package obs

import (
	"fmt"
	"sort"
	"strings"
)

// prometheusName maps a registry metric name ("server.query_ns") to a
// Prometheus-legal name ("tcodm_server_query_ns").
func prometheusName(name string) string {
	var sb strings.Builder
	sb.WriteString("tcodm_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// PrometheusText renders every metric in the registry in the Prometheus
// text exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as summaries with p50/p95/p99 quantiles plus _sum
// and _count. Output is sorted by name so same-state registries render
// byte-identical text. A nil registry renders empty.
func (r *Registry) PrometheusText() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	gauges := make(map[string]*Gauge, len(r.gauges))
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.counters {
		counters[k] = v
	}
	for k, v := range r.gauges {
		gauges[k] = v
	}
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	var sb strings.Builder
	for _, name := range sortedKeys(counters) {
		pn := prometheusName(name)
		fmt.Fprintf(&sb, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		pn := prometheusName(name)
		fmt.Fprintf(&sb, "# TYPE %s gauge\n%s %d\n", pn, pn, gauges[name].Value())
	}
	for _, name := range sortedKeys(hists) {
		pn := prometheusName(name)
		s := hists[name].Snapshot()
		fmt.Fprintf(&sb, "# TYPE %s summary\n", pn)
		fmt.Fprintf(&sb, "%s{quantile=\"0.5\"} %d\n", pn, s.P50)
		fmt.Fprintf(&sb, "%s{quantile=\"0.95\"} %d\n", pn, s.P95)
		fmt.Fprintf(&sb, "%s{quantile=\"0.99\"} %d\n", pn, s.P99)
		fmt.Fprintf(&sb, "%s_sum %d\n", pn, s.Sum)
		fmt.Fprintf(&sb, "%s_count %d\n", pn, s.Count)
	}
	return sb.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
