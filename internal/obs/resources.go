package obs

import "fmt"

// Resources is an exact account of the storage work one traced operation
// performed. Counts are logical (every record fetch counts its pages,
// whether or not the buffer pool had them cached), which makes them a
// deterministic function of the query and the database state: a serial
// and a parallel execution of the same query must report identical
// totals, and the differential corpus asserts exactly that.
type Resources struct {
	Pages      uint64 // heap pages touched per record fetch (home + forward hops + overflow chain)
	WALBytes   uint64 // WAL bytes appended on behalf of the operation
	ChainSteps uint64 // version-chain steps walked (history segments + snapshot hops)
	Atoms      uint64 // candidate atoms scanned
	Arc        uint64 // cold-archive blocks read (deep-history scans past the tiering watermark)
}

// Add accumulates o into r.
func (r *Resources) Add(o Resources) {
	if r == nil {
		return
	}
	r.Pages += o.Pages
	r.WALBytes += o.WALBytes
	r.ChainSteps += o.ChainSteps
	r.Atoms += o.Atoms
	r.Arc += o.Arc
}

// IsZero reports whether no resource was accounted.
func (r Resources) IsZero() bool {
	return r == Resources{}
}

// String renders the account in the stable "k=v" form used by span attrs
// and the differential-corpus signatures. The archive count is appended
// only when non-zero so accounts written before tiering existed render
// byte-identically (golden tests, differential signatures).
func (r Resources) String() string {
	s := fmt.Sprintf("pages=%d wal=%dB chain=%d atoms=%d",
		r.Pages, r.WALBytes, r.ChainSteps, r.Atoms)
	if r.Arc > 0 {
		s += fmt.Sprintf(" arc=%d", r.Arc)
	}
	return s
}
