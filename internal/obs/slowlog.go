package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// SlowEntry is one slow-query record.
type SlowEntry struct {
	When  time.Time
	Dur   time.Duration
	Query string // the query text (possibly truncated)
	Rows  int    // rows returned
	Plan  string // one-line access-path description, may be empty
	Trace uint64 // trace id, 0 when the query ran untraced
}

// SlowLog keeps the most recent slow queries — those whose execution time
// met or exceeded the threshold — in a bounded ring. A nil *SlowLog is a
// valid no-op; a zero threshold disables logging.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	ring      []SlowEntry
	next      uint64
	total     uint64
}

// maxSlowQueryText bounds stored query text so the log's memory stays fixed.
const maxSlowQueryText = 512

// NewSlowLog creates a slow log holding capacity entries with the given
// threshold. capacity < 1 is clamped to 1.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{threshold: threshold, ring: make([]SlowEntry, capacity)}
}

// SetThreshold updates the slow threshold; 0 disables logging.
func (l *SlowLog) SetThreshold(d time.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.threshold = d
	l.mu.Unlock()
}

// Threshold returns the current threshold.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.threshold
}

// Observe records the query if it was slow. Returns true when recorded.
// trace correlates the entry with its span tree (0 = untraced).
func (l *SlowLog) Observe(query string, dur time.Duration, rows int, plan string, trace uint64) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.threshold <= 0 || dur < l.threshold {
		return false
	}
	if len(query) > maxSlowQueryText {
		query = query[:maxSlowQueryText] + "…"
	}
	l.ring[l.next%uint64(len(l.ring))] = SlowEntry{
		When: time.Now(), Dur: dur, Query: query, Rows: rows, Plan: plan, Trace: trace,
	}
	l.next++
	l.total++
	return true
}

// Record stores the query unconditionally, bypassing the threshold. Used
// for per-session slow thresholds tighter than the engine-wide one.
func (l *SlowLog) Record(query string, dur time.Duration, rows int, plan string, trace uint64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(query) > maxSlowQueryText {
		query = query[:maxSlowQueryText] + "…"
	}
	l.ring[l.next%uint64(len(l.ring))] = SlowEntry{
		When: time.Now(), Dur: dur, Query: query, Rows: rows, Plan: plan, Trace: trace,
	}
	l.next++
	l.total++
}

// Entries returns the buffered slow queries oldest-first.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := uint64(len(l.ring))
	count := l.next
	if count > n {
		count = n
	}
	out := make([]SlowEntry, 0, count)
	start := l.next - count
	for i := uint64(0); i < count; i++ {
		out = append(out, l.ring[(start+i)%n])
	}
	return out
}

// Total returns how many slow queries have been observed overall.
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// String renders the log for human consumption.
func (l *SlowLog) String() string {
	entries := l.Entries()
	if len(entries) == 0 {
		return "(no slow queries)\n"
	}
	var sb strings.Builder
	for _, e := range entries {
		fmt.Fprintf(&sb, "%s  %8s  rows=%-6d %s\n",
			e.When.Format("15:04:05.000"), e.Dur.Round(time.Microsecond), e.Rows, e.Query)
		if e.Plan != "" {
			fmt.Fprintf(&sb, "    plan: %s\n", e.Plan)
		}
		if e.Trace != 0 {
			fmt.Fprintf(&sb, "    trace: %d\n", e.Trace)
		}
	}
	return sb.String()
}
