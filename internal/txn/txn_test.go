package txn

import (
	"path/filepath"
	"sync"
	"testing"

	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/wal"
)

func newEnv(t *testing.T, logged bool) (*Manager, *storage.Heap, *storage.BufferPool) {
	t.Helper()
	dev := storage.NewMemDevice()
	pool := storage.NewBufferPool(dev, 64)
	if err := storage.InitMeta(pool); err != nil {
		t.Fatal(err)
	}
	var w *wal.WAL
	if logged {
		var err error
		w, err = wal.Open(filepath.Join(t.TempDir(), "t.wal"), wal.Options{SyncOnCommit: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
	}
	heap := storage.NewHeap(pool, nil)
	if w != nil {
		heap.SetLogger(w)
		pool.SetFlushHook(w.EnsureDurable)
	}
	m := NewManager(temporal.NewClock(0), w, heap, pool)
	return m, heap, pool
}

func TestCommitAssignsMonotoneTT(t *testing.T) {
	m, heap, _ := newEnv(t, true)
	t1, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := heap.Insert([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	t2, _ := m.Begin()
	if t2.TT <= t1.TT {
		t.Errorf("TT not monotone: %v then %v", t1.TT, t2.TT)
	}
	_ = t2.Commit()
	c, a := m.Stats()
	if c != 2 || a != 0 {
		t.Errorf("stats = %d commits, %d aborts", c, a)
	}
}

func TestAbortRollsBackHeap(t *testing.T) {
	m, heap, _ := newEnv(t, true)
	// Committed baseline record.
	t0, _ := m.Begin()
	rid, err := heap.Insert([]byte("keep"))
	if err != nil {
		t.Fatal(err)
	}
	if err := t0.Commit(); err != nil {
		t.Fatal(err)
	}
	// Aborted transaction: insert, update, delete.
	t1, _ := m.Begin()
	rid2, _ := heap.Insert([]byte("rollback-me"))
	if err := heap.Update(rid, []byte("mutated")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}
	// Inserted record gone, updated record restored.
	if _, err := heap.Fetch(rid2); err == nil {
		t.Error("aborted insert survived")
	}
	got, err := heap.Fetch(rid)
	if err != nil || string(got) != "keep" {
		t.Errorf("aborted update not rolled back: %q, %v", got, err)
	}
	// Delete rollback.
	t2, _ := m.Begin()
	if err := heap.Delete(rid); err != nil {
		t.Fatal(err)
	}
	_ = t2.Abort()
	got, err = heap.Fetch(rid)
	if err != nil || string(got) != "keep" {
		t.Errorf("aborted delete not rolled back: %q, %v", got, err)
	}
}

func TestIndexUndoRunsOnAbort(t *testing.T) {
	m, heap, _ := newEnv(t, false)
	t1, _ := m.Begin()
	if _, err := heap.Insert([]byte("x")); err != nil {
		t.Fatal(err)
	}
	ran := false
	t1.RecordIndexUndo(func() error { ran = true; return nil })
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("index undo did not run on abort")
	}
	// Commit must NOT run index undo.
	t2, _ := m.Begin()
	ran2 := false
	t2.RecordIndexUndo(func() error { ran2 = true; return nil })
	_ = t2.Commit()
	if ran2 {
		t.Error("index undo ran on commit")
	}
}

func TestDoubleFinishRejected(t *testing.T) {
	m, _, _ := newEnv(t, false)
	t1, _ := m.Begin()
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err == nil {
		t.Error("double commit accepted")
	}
	if err := t1.Abort(); err == nil {
		t.Error("abort after commit accepted")
	}
}

func TestWritersSerialize(t *testing.T) {
	m, heap, _ := newEnv(t, false)
	const writers = 8
	const perWriter = 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tx, err := m.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := heap.Insert([]byte{byte(w), byte(i)}); err != nil {
					t.Error(err)
					_ = tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	n := 0
	_ = heap.Scan(func(rid storage.RID, data []byte) (bool, error) {
		n++
		return true, nil
	})
	if n != writers*perWriter {
		t.Errorf("record count = %d, want %d", n, writers*perWriter)
	}
	c, _ := m.Stats()
	if c != writers*perWriter {
		t.Errorf("commits = %d", c)
	}
}

func TestCheckpointFlushesAndTruncates(t *testing.T) {
	dev := storage.NewMemDevice()
	pool := storage.NewBufferPool(dev, 64)
	if err := storage.InitMeta(pool); err != nil {
		t.Fatal(err)
	}
	w, err := wal.Open(filepath.Join(t.TempDir(), "c.wal"), wal.Options{SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	heap := storage.NewHeap(pool, nil)
	heap.SetLogger(w)
	pool.SetFlushHook(w.EnsureDurable)
	m := NewManager(temporal.NewClock(0), w, heap, pool)

	tx, _ := m.Begin()
	if _, err := heap.Insert([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if w.Size() == 0 {
		t.Fatal("log empty after commit")
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 {
		t.Error("log not truncated by checkpoint")
	}
	if pool.DirtyPages() != 0 {
		t.Error("dirty pages survive checkpoint")
	}
}

func TestCommittedSurviveCrashViaReplay(t *testing.T) {
	// Build a logged database, commit one txn, "crash" (drop the pool
	// without flushing), then recover on a fresh pool via WAL replay.
	dev := storage.NewMemDevice()
	pool := storage.NewBufferPool(dev, 64)
	if err := storage.InitMeta(pool); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil { // meta page reaches "disk"
		t.Fatal(err)
	}
	walPath := filepath.Join(t.TempDir(), "crash.wal")
	w, err := wal.Open(walPath, wal.Options{SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	heap := storage.NewHeap(pool, nil)
	heap.SetLogger(w)
	pool.SetFlushHook(w.EnsureDurable)
	m := NewManager(temporal.NewClock(0), w, heap, pool)

	tx, _ := m.Begin()
	rid, err := heap.Insert([]byte("durable"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Crash: pool discarded. Uncommitted writes never hit dev (no-steal),
	// committed ones are in the log.
	w.Close()

	w2, err := wal.Open(walPath, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	pool2 := storage.NewBufferPool(dev, 64)
	heap2 := storage.NewHeap(pool2, nil)
	if err := heap2.Rebuild(dev); err != nil {
		t.Fatal(err)
	}
	stats, err := w2.Replay(heap2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed == 0 {
		t.Fatal("nothing replayed")
	}
	got, err := heap2.Fetch(rid)
	if err != nil || string(got) != "durable" {
		t.Fatalf("committed record lost in crash: %q, %v", got, err)
	}
}
