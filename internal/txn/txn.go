// Package txn implements the transaction layer: single-writer transactions
// that assign transaction-time instants from a monotone clock, buffer redo
// records in the write-ahead log, capture in-memory undo for abort, and
// enforce the no-steal protocol on the buffer pool.
package txn

import (
	"fmt"
	"sync"
	"time"

	"tcodm/internal/obs"
	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/wal"
)

// Manager coordinates transactions over one database's heap, pool, clock,
// and (optional) log.
type Manager struct {
	writeMu sync.Mutex // held by the active write transaction

	mu      sync.Mutex
	clock   *temporal.Clock
	log     *wal.WAL // nil = unlogged database
	heap    *storage.Heap
	pool    *storage.BufferPool
	nextTxn uint64
	active  *Txn
	commits uint64
	aborts  uint64

	met txnMetrics
}

// txnMetrics holds the transaction layer's instrumentation (nil = no-op).
// beginNS records only contended Begins (time spent queued for the writer
// slot); commitNS covers the WAL append + optional fsync on logged
// databases. Uncontended unlogged transactions touch no clock at all.
type txnMetrics struct {
	commits  *obs.Counter
	aborts   *obs.Counter
	beginNS  *obs.Histogram
	commitNS *obs.Histogram
	abortNS  *obs.Histogram
}

// SetMetrics binds the layer's instrumentation to reg under "txn.*" names.
// A nil registry disables instrumentation (the default).
func (m *Manager) SetMetrics(reg *obs.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if reg == nil {
		m.met = txnMetrics{}
		return
	}
	m.met = txnMetrics{
		commits:  reg.Counter("txn.commits"),
		aborts:   reg.Counter("txn.aborts"),
		beginNS:  reg.Histogram("txn.begin_ns"),
		commitNS: reg.Histogram("txn.commit_ns"),
		abortNS:  reg.Histogram("txn.abort_ns"),
	}
}

// NewManager wires the transaction layer. log may be nil for unlogged
// (ephemeral or bulk-load) operation.
func NewManager(clock *temporal.Clock, log *wal.WAL, heap *storage.Heap, pool *storage.BufferPool) *Manager {
	return &Manager{clock: clock, log: log, heap: heap, pool: pool, nextTxn: 1}
}

// Clock exposes the transaction-time clock (reads use Now()).
func (m *Manager) Clock() *temporal.Clock { return m.clock }

// Stats returns (commits, aborts).
func (m *Manager) Stats() (commits, aborts uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commits, m.aborts
}

// Txn is one write transaction. All mutations performed between Begin and
// Commit/Abort carry the transaction's TT instant and are atomic: they
// become durable together at Commit or vanish together at Abort.
type Txn struct {
	ID      uint64
	TT      temporal.Instant
	mgr     *Manager
	undo    []undoOp
	idxUndo []func() error
	done    bool
}

// RecordIndexUndo implements atom.IndexUndo: it collects inverse index
// operations to run if the transaction aborts.
func (t *Txn) RecordIndexUndo(fn func() error) {
	t.idxUndo = append(t.idxUndo, fn)
}

type undoKind uint8

const (
	undoInsert undoKind = iota
	undoUpdate
	undoDelete
)

type undoOp struct {
	kind  undoKind
	rid   storage.RID
	prior []byte
}

// Begin starts a write transaction, blocking until any current writer
// finishes. The returned transaction's TT is a fresh clock tick, strictly
// greater than every previously assigned instant.
func (m *Manager) Begin() (*Txn, error) {
	// Time the writer-slot wait only when there is one: the uncontended
	// path takes zero clock reads, and beginNS becomes a pure
	// lock-contention signal (how long writers queue behind each other).
	if !m.writeMu.TryLock() {
		start := time.Time{}
		if m.met.beginNS != nil {
			start = time.Now()
		}
		m.writeMu.Lock()
		if !start.IsZero() {
			m.met.beginNS.Observe(time.Since(start))
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &Txn{ID: m.nextTxn, mgr: m}
	m.nextTxn++
	t.TT = m.clock.Tick()
	if m.log != nil {
		if err := m.log.BeginTxn(t.ID); err != nil {
			m.writeMu.Unlock()
			return nil, err
		}
	}
	m.heap.SetTxnActive(true)
	m.heap.SetUndoRecorder(t)
	m.pool.BeginTxn()
	m.active = t
	return t, nil
}

// RecordInsert implements storage.UndoRecorder.
func (t *Txn) RecordInsert(rid storage.RID) {
	t.undo = append(t.undo, undoOp{kind: undoInsert, rid: rid})
}

// RecordUpdate implements storage.UndoRecorder.
func (t *Txn) RecordUpdate(rid storage.RID, prior []byte) {
	t.undo = append(t.undo, undoOp{kind: undoUpdate, rid: rid, prior: prior})
}

// RecordDelete implements storage.UndoRecorder.
func (t *Txn) RecordDelete(rid storage.RID, prior []byte) {
	t.undo = append(t.undo, undoOp{kind: undoDelete, rid: rid, prior: prior})
}

// Commit makes the transaction's effects durable (to the degree the WAL
// options promise) and releases the writer slot.
func (t *Txn) Commit() error {
	if t.done {
		return fmt.Errorf("txn: transaction %d already finished", t.ID)
	}
	m := t.mgr
	// commitNS covers the durability work (WAL append + optional fsync);
	// an unlogged commit has no I/O worth timing, so it stays clock-free.
	start := time.Time{}
	if m.log != nil && m.met.commitNS != nil {
		start = time.Now()
	}
	if m.log != nil {
		if err := m.log.Commit(); err != nil {
			return err
		}
	}
	t.finish(true)
	if !start.IsZero() {
		m.met.commitNS.Observe(time.Since(start))
	}
	return nil
}

// Abort rolls the transaction's effects back in memory and releases the
// writer slot. Nothing of the transaction reaches the log or (thanks to
// no-steal) the device.
func (t *Txn) Abort() error {
	if t.done {
		return fmt.Errorf("txn: transaction %d already finished", t.ID)
	}
	m := t.mgr
	start := time.Time{}
	if m.met.abortNS != nil {
		start = time.Now()
	}
	// Detach the recorder first so undo operations are not re-captured.
	m.heap.SetUndoRecorder(nil)
	var firstErr error
	for i := len(t.undo) - 1; i >= 0; i-- {
		op := t.undo[i]
		var err error
		switch op.kind {
		case undoInsert:
			err = m.heap.UndoInsert(op.rid)
		case undoUpdate:
			err = m.heap.UndoUpdate(op.rid, op.prior)
		case undoDelete:
			err = m.heap.UndoDelete(op.rid, op.prior)
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("txn: undo of %v failed: %w", op.rid, err)
		}
	}
	for i := len(t.idxUndo) - 1; i >= 0; i-- {
		if err := t.idxUndo[i](); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("txn: index undo failed: %w", err)
		}
	}
	if m.log != nil {
		m.log.Abort()
	}
	t.finish(false)
	if !start.IsZero() {
		m.met.abortNS.Observe(time.Since(start))
	}
	return firstErr
}

func (t *Txn) finish(committed bool) {
	m := t.mgr
	m.heap.SetUndoRecorder(nil)
	m.heap.SetTxnActive(false)
	m.pool.EndTxn(committed)
	m.mu.Lock()
	m.active = nil
	if committed {
		m.commits++
		m.met.commits.Inc()
	} else {
		m.aborts++
		m.met.aborts.Inc()
	}
	m.mu.Unlock()
	t.done = true
	t.undo = nil
	m.writeMu.Unlock()
}

// Checkpoint flushes every dirty page, syncs the device, and truncates the
// log. Must not run inside a write transaction.
func (m *Manager) Checkpoint() error {
	m.mu.Lock()
	if m.active != nil {
		m.mu.Unlock()
		return fmt.Errorf("txn: checkpoint during active transaction")
	}
	m.mu.Unlock()
	// Serialize with writers for the duration of the flush.
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	if err := m.pool.FlushAll(); err != nil {
		return err
	}
	if m.log != nil {
		return m.log.Checkpoint()
	}
	return nil
}
