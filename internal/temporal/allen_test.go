package temporal

import (
	"math/rand"
	"testing"
)

func TestClassifyAll13(t *testing.T) {
	b := NewInterval(10, 20)
	cases := []struct {
		a    Interval
		want Relation
	}{
		{NewInterval(0, 5), Precedes},
		{NewInterval(0, 10), Meets},
		{NewInterval(5, 15), OverlapsWith},
		{NewInterval(10, 15), Starts},
		{NewInterval(12, 18), During},
		{NewInterval(15, 20), Finishes},
		{NewInterval(10, 20), Equals},
		{NewInterval(5, 20), FinishedBy},
		{NewInterval(5, 25), Contains},
		{NewInterval(10, 25), StartedBy},
		{NewInterval(15, 25), OverlappedBy},
		{NewInterval(20, 25), MetBy},
		{NewInterval(25, 30), PrecededBy},
	}
	seen := map[Relation]bool{}
	for _, c := range cases {
		got := Classify(c.a, b)
		if got != c.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", c.a, b, got, c.want)
		}
		seen[got] = true
	}
	if len(seen) != 13 {
		t.Errorf("only %d distinct relations exercised, want 13", len(seen))
	}
}

func TestClassifyEmpty(t *testing.T) {
	if Classify(Interval{}, NewInterval(0, 1)) != Invalid {
		t.Error("empty first operand should be Invalid")
	}
	if Classify(NewInterval(0, 1), Interval{}) != Invalid {
		t.Error("empty second operand should be Invalid")
	}
}

func TestInverseIsInvolution(t *testing.T) {
	for r := Invalid; r <= PrecededBy; r++ {
		if got := r.Inverse().Inverse(); got != r {
			t.Errorf("Inverse(Inverse(%v)) = %v", r, got)
		}
	}
}

// TestClassifyInverseProperty checks Classify(a,b).Inverse() == Classify(b,a)
// over random interval pairs.
func TestClassifyInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := randInterval(rng)
		b := randInterval(rng)
		if got, want := Classify(a, b).Inverse(), Classify(b, a); got != want {
			t.Fatalf("Classify(%v,%v).Inverse() = %v, Classify(%v,%v) = %v", a, b, got, b, a, want)
		}
	}
}

// TestClassifyConsistentWithSetOps checks the relation classification
// against the set-level predicates it must agree with.
func TestClassifyConsistentWithSetOps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a := randInterval(rng)
		b := randInterval(rng)
		r := Classify(a, b)
		overlapRelations := map[Relation]bool{
			OverlapsWith: true, Starts: true, During: true, Finishes: true,
			Equals: true, FinishedBy: true, Contains: true, StartedBy: true,
			OverlappedBy: true,
		}
		if a.Overlaps(b) != overlapRelations[r] {
			t.Fatalf("relation %v inconsistent with Overlaps for %v, %v", r, a, b)
		}
		if r == Equals && !a.Equal(b) {
			t.Fatalf("Equals relation but intervals differ: %v, %v", a, b)
		}
	}
}

func randInterval(rng *rand.Rand) Interval {
	from := Instant(rng.Intn(40))
	length := Instant(1 + rng.Intn(15))
	return Interval{From: from, To: from + length}
}

func TestRelationString(t *testing.T) {
	if Precedes.String() != "precedes" {
		t.Errorf("Precedes.String() = %q", Precedes.String())
	}
	if Relation(200).String() != "unknown" {
		t.Errorf("out-of-range relation should stringify to unknown")
	}
}
