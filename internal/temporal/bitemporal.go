package temporal

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Stamp is a bitemporal timestamp attached to every stored version: the
// valid-time interval during which the version's value holds in the modelled
// reality, and the transaction-time interval during which the version was
// part of the current database state. Transaction time is always assigned
// by the system; a version that is still part of the current state has an
// open-ended transaction interval.
type Stamp struct {
	Valid Interval // application-supplied validity
	Trans Interval // system-supplied transaction lifetime
}

// Current reports whether the version is part of the current database
// state (its transaction interval is open-ended).
func (s Stamp) Current() bool { return s.Trans.IsOpenEnded() }

// VisibleAt reports whether the version was part of the database state as
// recorded at transaction time tt and holds at valid time vt.
func (s Stamp) VisibleAt(vt, tt Instant) bool {
	return s.Valid.Contains(vt) && s.Trans.Contains(tt)
}

// String renders the stamp as "valid@trans".
func (s Stamp) String() string {
	return fmt.Sprintf("v%s t%s", s.Valid, s.Trans)
}

// Encoded sizes of the fixed-width wire forms.
const (
	InstantWireSize  = 8
	IntervalWireSize = 2 * InstantWireSize
	StampWireSize    = 2 * IntervalWireSize
)

// AppendInstant appends the 8-byte big-endian wire form of t to dst.
// The encoding is order-preserving under bytewise comparison (the sign bit
// is flipped), which lets instants participate in composite index keys.
func AppendInstant(dst []byte, t Instant) []byte {
	var buf [InstantWireSize]byte
	binary.BigEndian.PutUint64(buf[:], uint64(t)^(1<<63))
	return append(dst, buf[:]...)
}

// DecodeInstant decodes an instant produced by AppendInstant.
func DecodeInstant(src []byte) (Instant, error) {
	if len(src) < InstantWireSize {
		return 0, fmt.Errorf("temporal: short instant encoding (%d bytes)", len(src))
	}
	return Instant(binary.BigEndian.Uint64(src) ^ (1 << 63)), nil
}

// AppendInterval appends the wire form of iv (From then To) to dst.
func AppendInterval(dst []byte, iv Interval) []byte {
	dst = AppendInstant(dst, iv.From)
	return AppendInstant(dst, iv.To)
}

// DecodeInterval decodes an interval produced by AppendInterval.
func DecodeInterval(src []byte) (Interval, error) {
	if len(src) < IntervalWireSize {
		return Interval{}, fmt.Errorf("temporal: short interval encoding (%d bytes)", len(src))
	}
	from, err := DecodeInstant(src)
	if err != nil {
		return Interval{}, err
	}
	to, err := DecodeInstant(src[InstantWireSize:])
	if err != nil {
		return Interval{}, err
	}
	return Interval{From: from, To: to}, nil
}

// AppendStamp appends the wire form of s (valid then trans) to dst.
func AppendStamp(dst []byte, s Stamp) []byte {
	dst = AppendInterval(dst, s.Valid)
	return AppendInterval(dst, s.Trans)
}

// DecodeStamp decodes a stamp produced by AppendStamp.
func DecodeStamp(src []byte) (Stamp, error) {
	if len(src) < StampWireSize {
		return Stamp{}, fmt.Errorf("temporal: short stamp encoding (%d bytes)", len(src))
	}
	v, err := DecodeInterval(src)
	if err != nil {
		return Stamp{}, err
	}
	t, err := DecodeInterval(src[IntervalWireSize:])
	if err != nil {
		return Stamp{}, err
	}
	return Stamp{Valid: v, Trans: t}, nil
}

// AppendElement appends a length-prefixed wire form of e to dst.
func AppendElement(dst []byte, e Element) []byte {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(e)))
	dst = append(dst, lenBuf[:]...)
	for _, iv := range e {
		dst = AppendInterval(dst, iv)
	}
	return dst
}

// DecodeElement decodes an element produced by AppendElement, returning the
// element and the number of bytes consumed.
func DecodeElement(src []byte) (Element, int, error) {
	if len(src) < 4 {
		return nil, 0, fmt.Errorf("temporal: short element encoding (%d bytes)", len(src))
	}
	n := int(binary.BigEndian.Uint32(src))
	need := 4 + n*IntervalWireSize
	if len(src) < need {
		return nil, 0, fmt.Errorf("temporal: element encoding truncated: need %d bytes, have %d", need, len(src))
	}
	if n == 0 {
		return nil, 4, nil
	}
	e := make(Element, n)
	off := 4
	for i := 0; i < n; i++ {
		iv, err := DecodeInterval(src[off:])
		if err != nil {
			return nil, 0, err
		}
		e[i] = iv
		off += IntervalWireSize
	}
	if !e.IsCanonical() {
		return nil, 0, fmt.Errorf("temporal: decoded element is not canonical: %s", e)
	}
	return e, off, nil
}

// Clock issues strictly monotone transaction-time instants. The zero value
// starts at instant 1. Now may be called concurrently with Tick/Advance;
// the transaction manager serializes the advancing side.
type Clock struct {
	last int64 // accessed atomically
}

// NewClock returns a clock whose next tick is strictly after last.
func NewClock(last Instant) *Clock { return &Clock{last: int64(last)} }

// Tick returns the next instant, strictly greater than any previous tick.
func (c *Clock) Tick() Instant {
	return Instant(atomic.AddInt64(&c.last, 1))
}

// Now returns the most recently issued instant without advancing the clock.
func (c *Clock) Now() Instant { return Instant(atomic.LoadInt64(&c.last)) }

// Advance moves the clock forward to at least t.
func (c *Clock) Advance(t Instant) {
	for {
		cur := atomic.LoadInt64(&c.last)
		if int64(t) <= cur {
			return
		}
		if atomic.CompareAndSwapInt64(&c.last, cur, int64(t)) {
			return
		}
	}
}
