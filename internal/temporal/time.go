// Package temporal implements the time substrate of the temporal
// complex-object data model: discrete instants (chronons), half-open
// intervals, temporal elements (finite unions of disjoint intervals),
// Allen's interval relations, and bitemporal stamps combining valid time
// and transaction time.
//
// The model uses a discrete, linearly ordered time domain. An Instant is a
// chronon number; applications map wall-clock time onto chronons at whatever
// granularity they need (days, seconds, ...). Two distinguished sentinels
// exist: Beginning (the least representable instant) and Forever (the
// until-changed / "now and beyond" upper sentinel used for open-ended
// validity).
package temporal

import (
	"fmt"
	"math"
)

// Instant is a point on the discrete time axis (a chronon number).
type Instant int64

const (
	// Beginning is the least valid instant.
	Beginning Instant = math.MinInt64 + 1
	// Forever is the upper sentinel: an interval ending at Forever is
	// open-ended ("until changed"). Forever itself is never contained in
	// any interval's extent as a slice point for stored data, but may be
	// used as an exclusive end bound.
	Forever Instant = math.MaxInt64
)

// Min returns the smaller of two instants.
func Min(a, b Instant) Instant {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of two instants.
func Max(a, b Instant) Instant {
	if a > b {
		return a
	}
	return b
}

// String renders the instant, using symbolic names for the sentinels.
func (t Instant) String() string {
	switch t {
	case Beginning:
		return "-inf"
	case Forever:
		return "inf"
	default:
		return fmt.Sprintf("%d", int64(t))
	}
}

// Interval is a half-open interval [From, To) on the time axis.
// An interval is empty iff From >= To. The canonical empty interval is the
// zero value Interval{}.
type Interval struct {
	From Instant // inclusive lower bound
	To   Instant // exclusive upper bound
}

// NewInterval returns the interval [from, to). It panics if from > to,
// which always indicates a programming error in the caller.
func NewInterval(from, to Instant) Interval {
	if from > to {
		panic(fmt.Sprintf("temporal: invalid interval [%v, %v)", from, to))
	}
	return Interval{From: from, To: to}
}

// Point returns the unit interval [t, t+1) containing exactly instant t.
func Point(t Instant) Interval {
	if t == Forever {
		panic("temporal: Point(Forever) is not representable")
	}
	return Interval{From: t, To: t + 1}
}

// Open returns the open-ended interval [from, Forever).
func Open(from Instant) Interval { return Interval{From: from, To: Forever} }

// All is the interval covering the entire time axis.
func All() Interval { return Interval{From: Beginning, To: Forever} }

// IsEmpty reports whether the interval contains no instants.
func (iv Interval) IsEmpty() bool { return iv.From >= iv.To }

// IsOpenEnded reports whether the interval extends to Forever.
func (iv Interval) IsOpenEnded() bool { return iv.To == Forever && iv.From < iv.To }

// Duration returns the number of chronons in the interval. An open-ended
// interval has unbounded duration, reported as the largest int64.
func (iv Interval) Duration() int64 {
	if iv.IsEmpty() {
		return 0
	}
	if iv.IsOpenEnded() || iv.From == Beginning {
		return math.MaxInt64
	}
	return int64(iv.To - iv.From)
}

// Contains reports whether instant t lies within the interval.
func (iv Interval) Contains(t Instant) bool { return iv.From <= t && t < iv.To }

// ContainsInterval reports whether o is entirely inside iv. The empty
// interval is contained in everything.
func (iv Interval) ContainsInterval(o Interval) bool {
	if o.IsEmpty() {
		return true
	}
	return iv.From <= o.From && o.To <= iv.To
}

// Overlaps reports whether the two intervals share at least one instant.
func (iv Interval) Overlaps(o Interval) bool {
	if iv.IsEmpty() || o.IsEmpty() {
		return false
	}
	return iv.From < o.To && o.From < iv.To
}

// Intersect returns the common part of the two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	from := Max(iv.From, o.From)
	to := Min(iv.To, o.To)
	if from >= to {
		return Interval{}
	}
	return Interval{From: from, To: to}
}

// Adjacent reports whether the intervals abut without overlapping
// (iv.To == o.From or o.To == iv.From) and neither is empty.
func (iv Interval) Adjacent(o Interval) bool {
	if iv.IsEmpty() || o.IsEmpty() {
		return false
	}
	return iv.To == o.From || o.To == iv.From
}

// Mergeable reports whether the union of the two intervals is itself a
// single interval (they overlap or are adjacent).
func (iv Interval) Mergeable(o Interval) bool {
	return iv.Overlaps(o) || iv.Adjacent(o)
}

// Union returns the smallest single interval covering both operands.
// It panics unless Mergeable(o) or one operand is empty.
func (iv Interval) Union(o Interval) Interval {
	if iv.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return iv
	}
	if !iv.Mergeable(o) {
		panic(fmt.Sprintf("temporal: union of disjoint intervals %v, %v", iv, o))
	}
	return Interval{From: Min(iv.From, o.From), To: Max(iv.To, o.To)}
}

// Equal reports whether the intervals denote the same set of instants.
// All empty intervals are equal.
func (iv Interval) Equal(o Interval) bool {
	if iv.IsEmpty() && o.IsEmpty() {
		return true
	}
	return iv == o
}

// Before reports whether iv ends strictly before o starts (Allen: precedes
// or meets excluded — strictly before with a gap or meeting; here: iv.To <=
// o.From, i.e. no shared instant and iv entirely earlier).
func (iv Interval) Before(o Interval) bool {
	if iv.IsEmpty() || o.IsEmpty() {
		return false
	}
	return iv.To <= o.From
}

// String renders the interval in [from, to) notation.
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "[)"
	}
	return fmt.Sprintf("[%v, %v)", iv.From, iv.To)
}

// Clamp restricts the interval to bounds, returning the intersection.
func (iv Interval) Clamp(bounds Interval) Interval { return iv.Intersect(bounds) }
