package temporal

// Relation enumerates Allen's thirteen qualitative relations between two
// non-empty intervals, plus Invalid for comparisons involving an empty
// interval. The names follow Allen (1983); the first operand is the
// receiver-side interval.
type Relation uint8

const (
	// Invalid is returned when either operand is empty.
	Invalid Relation = iota
	// Precedes: a ends strictly before b starts, with a gap.
	Precedes
	// Meets: a ends exactly where b starts.
	Meets
	// OverlapsWith: a starts before b, they share instants, a ends inside b.
	OverlapsWith
	// Starts: a and b start together, a ends first.
	Starts
	// During: a lies strictly inside b.
	During
	// Finishes: a and b end together, a starts later.
	Finishes
	// Equals: identical intervals.
	Equals
	// FinishedBy: inverse of Finishes.
	FinishedBy
	// Contains: inverse of During.
	Contains
	// StartedBy: inverse of Starts.
	StartedBy
	// OverlappedBy: inverse of OverlapsWith.
	OverlappedBy
	// MetBy: inverse of Meets.
	MetBy
	// PrecededBy: inverse of Precedes.
	PrecededBy
)

var relationNames = [...]string{
	Invalid:      "invalid",
	Precedes:     "precedes",
	Meets:        "meets",
	OverlapsWith: "overlaps",
	Starts:       "starts",
	During:       "during",
	Finishes:     "finishes",
	Equals:       "equals",
	FinishedBy:   "finished-by",
	Contains:     "contains",
	StartedBy:    "started-by",
	OverlappedBy: "overlapped-by",
	MetBy:        "met-by",
	PrecededBy:   "preceded-by",
}

// String returns the conventional name of the relation.
func (r Relation) String() string {
	if int(r) < len(relationNames) {
		return relationNames[r]
	}
	return "unknown"
}

// Inverse returns the converse relation (the relation of b to a given the
// relation of a to b).
func (r Relation) Inverse() Relation {
	switch r {
	case Precedes:
		return PrecededBy
	case PrecededBy:
		return Precedes
	case Meets:
		return MetBy
	case MetBy:
		return Meets
	case OverlapsWith:
		return OverlappedBy
	case OverlappedBy:
		return OverlapsWith
	case Starts:
		return StartedBy
	case StartedBy:
		return Starts
	case During:
		return Contains
	case Contains:
		return During
	case Finishes:
		return FinishedBy
	case FinishedBy:
		return Finishes
	default:
		return r // Equals and Invalid are self-inverse.
	}
}

// Classify determines Allen's relation of a with respect to b.
// Either operand being empty yields Invalid.
func Classify(a, b Interval) Relation {
	if a.IsEmpty() || b.IsEmpty() {
		return Invalid
	}
	switch {
	case a.To < b.From:
		return Precedes
	case a.To == b.From:
		return Meets
	case b.To < a.From:
		return PrecededBy
	case b.To == a.From:
		return MetBy
	}
	// The intervals overlap in at least one instant.
	switch {
	case a.From == b.From && a.To == b.To:
		return Equals
	case a.From == b.From:
		if a.To < b.To {
			return Starts
		}
		return StartedBy
	case a.To == b.To:
		if a.From > b.From {
			return Finishes
		}
		return FinishedBy
	case a.From > b.From && a.To < b.To:
		return During
	case a.From < b.From && a.To > b.To:
		return Contains
	case a.From < b.From:
		return OverlapsWith
	default:
		return OverlappedBy
	}
}
