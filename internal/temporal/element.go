package temporal

import (
	"sort"
	"strings"
)

// Element is a temporal element: a finite union of instants represented as
// a canonical sequence of intervals. The canonical form is: all intervals
// non-empty, sorted by From, pairwise disjoint and non-adjacent (maximally
// coalesced). The zero value is the empty element.
//
// Elements are the lifespans of atoms and the timestamps of attribute
// values in the temporal complex-object model: an atom that is deleted and
// later re-inserted has a lifespan of two disjoint intervals.
type Element []Interval

// NewElement builds a canonical element from arbitrary intervals
// (overlapping, adjacent, unsorted, possibly empty ones allowed).
func NewElement(ivs ...Interval) Element {
	nonEmpty := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.IsEmpty() {
			nonEmpty = append(nonEmpty, iv)
		}
	}
	if len(nonEmpty) == 0 {
		return nil
	}
	sort.Slice(nonEmpty, func(i, j int) bool {
		if nonEmpty[i].From != nonEmpty[j].From {
			return nonEmpty[i].From < nonEmpty[j].From
		}
		return nonEmpty[i].To < nonEmpty[j].To
	})
	out := Element{nonEmpty[0]}
	for _, iv := range nonEmpty[1:] {
		last := &out[len(out)-1]
		if last.Mergeable(iv) {
			*last = last.Union(iv)
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// IsEmpty reports whether the element contains no instants.
func (e Element) IsEmpty() bool { return len(e) == 0 }

// IsCanonical reports whether the element is in canonical form. All
// elements produced by this package are canonical; the predicate exists for
// validating externally supplied or deserialized data.
func (e Element) IsCanonical() bool {
	for i, iv := range e {
		if iv.IsEmpty() {
			return false
		}
		if i > 0 && e[i-1].To >= iv.From {
			return false
		}
	}
	return true
}

// Contains reports whether instant t is in the element.
func (e Element) Contains(t Instant) bool {
	i := sort.Search(len(e), func(i int) bool { return e[i].To > t })
	return i < len(e) && e[i].Contains(t)
}

// CoversInterval reports whether the whole interval iv lies inside the
// element (inside a single constituent interval, since constituents are
// maximally coalesced).
func (e Element) CoversInterval(iv Interval) bool {
	if iv.IsEmpty() {
		return true
	}
	i := sort.Search(len(e), func(i int) bool { return e[i].To > iv.From })
	return i < len(e) && e[i].ContainsInterval(iv)
}

// Overlaps reports whether the element shares any instant with iv.
func (e Element) Overlaps(iv Interval) bool {
	if iv.IsEmpty() {
		return false
	}
	i := sort.Search(len(e), func(i int) bool { return e[i].To > iv.From })
	return i < len(e) && e[i].Overlaps(iv)
}

// Span returns the smallest single interval covering the element
// (empty interval for the empty element).
func (e Element) Span() Interval {
	if len(e) == 0 {
		return Interval{}
	}
	return Interval{From: e[0].From, To: e[len(e)-1].To}
}

// Duration returns the total number of chronons in the element, saturating
// at the largest int64 for unbounded elements.
func (e Element) Duration() int64 {
	var total int64
	for _, iv := range e {
		d := iv.Duration()
		if total += d; total < 0 || d == int64(^uint64(0)>>1) {
			return int64(^uint64(0) >> 1)
		}
	}
	return total
}

// Union returns the canonical union of two elements.
func (e Element) Union(o Element) Element {
	if e.IsEmpty() {
		return o.Clone()
	}
	if o.IsEmpty() {
		return e.Clone()
	}
	merged := make([]Interval, 0, len(e)+len(o))
	merged = append(merged, e...)
	merged = append(merged, o...)
	return NewElement(merged...)
}

// Intersect returns the canonical intersection of two elements.
func (e Element) Intersect(o Element) Element {
	var out Element
	i, j := 0, 0
	for i < len(e) && j < len(o) {
		iv := e[i].Intersect(o[j])
		if !iv.IsEmpty() {
			out = append(out, iv)
		}
		if e[i].To <= o[j].To {
			i++
		} else {
			j++
		}
	}
	return out
}

// IntersectInterval returns the part of the element inside iv.
func (e Element) IntersectInterval(iv Interval) Element {
	if iv.IsEmpty() || e.IsEmpty() {
		return nil
	}
	return e.Intersect(Element{iv})
}

// Subtract returns the canonical difference e \ o.
func (e Element) Subtract(o Element) Element {
	if e.IsEmpty() || o.IsEmpty() {
		return e.Clone()
	}
	var out Element
	j := 0
	for _, iv := range e {
		cur := iv
		for j < len(o) && o[j].To <= cur.From {
			j++
		}
		k := j
		for k < len(o) && o[k].From < cur.To {
			sub := o[k]
			if sub.From > cur.From {
				out = append(out, Interval{From: cur.From, To: sub.From})
			}
			if sub.To >= cur.To {
				cur = Interval{} // fully consumed
				break
			}
			cur = Interval{From: sub.To, To: cur.To}
			k++
		}
		if !cur.IsEmpty() {
			out = append(out, cur)
		}
	}
	return out
}

// SubtractInterval returns e with the instants of iv removed.
func (e Element) SubtractInterval(iv Interval) Element {
	if iv.IsEmpty() {
		return e.Clone()
	}
	return e.Subtract(Element{iv})
}

// Complement returns the element of all instants not in e, within the
// universe [Beginning, Forever).
func (e Element) Complement() Element {
	return Element{All()}.Subtract(e)
}

// Equal reports whether two elements denote the same set of instants.
// Both are assumed canonical.
func (e Element) Equal(o Element) bool {
	if len(e) != len(o) {
		return false
	}
	for i := range e {
		if e[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the element.
func (e Element) Clone() Element {
	if e == nil {
		return nil
	}
	out := make(Element, len(e))
	copy(out, e)
	return out
}

// String renders the element as a brace-enclosed list of intervals.
func (e Element) String() string {
	if e.IsEmpty() {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, iv := range e {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(iv.String())
	}
	b.WriteByte('}')
	return b.String()
}
