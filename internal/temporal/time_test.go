package temporal

import (
	"math"
	"testing"
)

func TestIntervalEmpty(t *testing.T) {
	cases := []struct {
		iv    Interval
		empty bool
	}{
		{Interval{}, true},
		{Interval{From: 5, To: 5}, true},
		{Interval{From: 6, To: 5}, true},
		{Interval{From: 5, To: 6}, false},
		{All(), false},
		{Open(0), false},
	}
	for _, c := range cases {
		if got := c.iv.IsEmpty(); got != c.empty {
			t.Errorf("IsEmpty(%v) = %v, want %v", c.iv, got, c.empty)
		}
	}
}

func TestNewIntervalPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewInterval(10, 5) did not panic")
		}
	}()
	NewInterval(10, 5)
}

func TestPoint(t *testing.T) {
	p := Point(7)
	if !p.Contains(7) {
		t.Error("Point(7) does not contain 7")
	}
	if p.Contains(6) || p.Contains(8) {
		t.Error("Point(7) contains a neighbour")
	}
	if p.Duration() != 1 {
		t.Errorf("Point duration = %d, want 1", p.Duration())
	}
}

func TestPointForeverPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Point(Forever) did not panic")
		}
	}()
	Point(Forever)
}

func TestIntervalContains(t *testing.T) {
	iv := NewInterval(10, 20)
	for _, in := range []Instant{10, 15, 19} {
		if !iv.Contains(in) {
			t.Errorf("%v should contain %v", iv, in)
		}
	}
	for _, out := range []Instant{9, 20, 100, Beginning} {
		if iv.Contains(out) {
			t.Errorf("%v should not contain %v", iv, out)
		}
	}
}

func TestIntervalOverlapIntersect(t *testing.T) {
	cases := []struct {
		a, b    Interval
		overlap bool
		want    Interval
	}{
		{NewInterval(0, 10), NewInterval(5, 15), true, NewInterval(5, 10)},
		{NewInterval(0, 10), NewInterval(10, 20), false, Interval{}},
		{NewInterval(0, 10), NewInterval(2, 4), true, NewInterval(2, 4)},
		{NewInterval(0, 10), Interval{}, false, Interval{}},
		{All(), NewInterval(-5, 5), true, NewInterval(-5, 5)},
		{Open(100), NewInterval(50, 150), true, NewInterval(100, 150)},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.overlap {
			t.Errorf("Overlaps(%v, %v) = %v, want %v", c.a, c.b, got, c.overlap)
		}
		if got := c.a.Intersect(c.b); !got.Equal(c.want) {
			t.Errorf("Intersect(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		// Symmetry.
		if got := c.b.Overlaps(c.a); got != c.overlap {
			t.Errorf("Overlaps(%v, %v) = %v, want %v", c.b, c.a, got, c.overlap)
		}
	}
}

func TestIntervalAdjacentUnion(t *testing.T) {
	a, b := NewInterval(0, 10), NewInterval(10, 20)
	if !a.Adjacent(b) || !b.Adjacent(a) {
		t.Fatal("adjacent intervals not reported adjacent")
	}
	if got := a.Union(b); !got.Equal(NewInterval(0, 20)) {
		t.Errorf("Union = %v, want [0, 20)", got)
	}
	if a.Adjacent(NewInterval(11, 20)) {
		t.Error("gap intervals reported adjacent")
	}
}

func TestIntervalUnionDisjointPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Union of disjoint intervals did not panic")
		}
	}()
	NewInterval(0, 5).Union(NewInterval(10, 20))
}

func TestIntervalDuration(t *testing.T) {
	if d := NewInterval(3, 11).Duration(); d != 8 {
		t.Errorf("duration = %d, want 8", d)
	}
	if d := Open(5).Duration(); d != math.MaxInt64 {
		t.Errorf("open-ended duration = %d, want MaxInt64", d)
	}
	if d := (Interval{}).Duration(); d != 0 {
		t.Errorf("empty duration = %d, want 0", d)
	}
}

func TestIntervalContainsInterval(t *testing.T) {
	outer := NewInterval(0, 100)
	if !outer.ContainsInterval(NewInterval(10, 90)) {
		t.Error("inner interval not contained")
	}
	if !outer.ContainsInterval(outer) {
		t.Error("interval does not contain itself")
	}
	if !outer.ContainsInterval(Interval{}) {
		t.Error("empty interval not contained")
	}
	if outer.ContainsInterval(NewInterval(50, 150)) {
		t.Error("overhanging interval reported contained")
	}
}

func TestInstantString(t *testing.T) {
	if s := Forever.String(); s != "inf" {
		t.Errorf("Forever = %q", s)
	}
	if s := Beginning.String(); s != "-inf" {
		t.Errorf("Beginning = %q", s)
	}
	if s := Instant(42).String(); s != "42" {
		t.Errorf("42 = %q", s)
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
}

func TestBefore(t *testing.T) {
	if !NewInterval(0, 5).Before(NewInterval(5, 10)) {
		t.Error("meeting intervals: first should be Before second")
	}
	if NewInterval(0, 6).Before(NewInterval(5, 10)) {
		t.Error("overlapping intervals reported Before")
	}
	if (Interval{}).Before(NewInterval(5, 10)) {
		t.Error("empty interval reported Before")
	}
}
