package temporal

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestStampVisibility(t *testing.T) {
	s := Stamp{Valid: NewInterval(10, 20), Trans: Open(100)}
	if !s.Current() {
		t.Error("open-ended trans interval should be current")
	}
	if !s.VisibleAt(15, 100) {
		t.Error("should be visible at (15, 100)")
	}
	if s.VisibleAt(25, 100) {
		t.Error("valid time outside range")
	}
	if s.VisibleAt(15, 99) {
		t.Error("transaction time before creation")
	}
	closed := Stamp{Valid: NewInterval(10, 20), Trans: NewInterval(100, 200)}
	if closed.Current() {
		t.Error("closed trans interval should not be current")
	}
	if !closed.VisibleAt(15, 150) {
		t.Error("should be visible within both intervals")
	}
	if closed.VisibleAt(15, 200) {
		t.Error("transaction end is exclusive")
	}
}

func TestInstantEncodingOrderPreserving(t *testing.T) {
	instants := []Instant{Beginning, -1000, -1, 0, 1, 42, 1 << 40, Forever}
	encoded := make([][]byte, len(instants))
	for i, in := range instants {
		encoded[i] = AppendInstant(nil, in)
	}
	if !sort.SliceIsSorted(encoded, func(i, j int) bool {
		return bytes.Compare(encoded[i], encoded[j]) < 0
	}) {
		t.Fatal("instant encodings are not order-preserving")
	}
	for i, in := range instants {
		got, err := DecodeInstant(encoded[i])
		if err != nil || got != in {
			t.Errorf("round-trip of %v failed: got %v, err %v", in, got, err)
		}
	}
}

func TestPropInstantEncodingRoundTrip(t *testing.T) {
	f := func(x int64) bool {
		in := Instant(x)
		got, err := DecodeInstant(AppendInstant(nil, in))
		return err == nil && got == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropInstantEncodingOrdering(t *testing.T) {
	f := func(a, b int64) bool {
		ea := AppendInstant(nil, Instant(a))
		eb := AppendInstant(nil, Instant(b))
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalStampRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		iv := randInterval(rng)
		got, err := DecodeInterval(AppendInterval(nil, iv))
		if err != nil || !got.Equal(iv) {
			t.Fatalf("interval round-trip failed: %v -> %v (%v)", iv, got, err)
		}
		s := Stamp{Valid: randInterval(rng), Trans: randInterval(rng)}
		gs, err := DecodeStamp(AppendStamp(nil, s))
		if err != nil || gs != s {
			t.Fatalf("stamp round-trip failed: %v -> %v (%v)", s, gs, err)
		}
	}
}

func TestDecodeShortBuffers(t *testing.T) {
	if _, err := DecodeInstant(nil); err == nil {
		t.Error("DecodeInstant(nil) should fail")
	}
	if _, err := DecodeInterval(make([]byte, 5)); err == nil {
		t.Error("DecodeInterval(short) should fail")
	}
	if _, err := DecodeStamp(make([]byte, 17)); err == nil {
		t.Error("DecodeStamp(short) should fail")
	}
	if _, _, err := DecodeElement(nil); err == nil {
		t.Error("DecodeElement(nil) should fail")
	}
	// Element with claimed length longer than the buffer.
	buf := AppendElement(nil, NewElement(NewInterval(0, 5)))
	if _, _, err := DecodeElement(buf[:len(buf)-3]); err == nil {
		t.Error("truncated element should fail")
	}
}

func TestDecodeElementRejectsNonCanonical(t *testing.T) {
	// Hand-assemble an element encoding with overlapping intervals.
	var buf []byte
	buf = append(buf, 0, 0, 0, 2)
	buf = AppendInterval(buf, NewInterval(0, 10))
	buf = AppendInterval(buf, NewInterval(5, 15))
	if _, _, err := DecodeElement(buf); err == nil {
		t.Error("non-canonical element should be rejected")
	}
}

func TestClock(t *testing.T) {
	c := NewClock(10)
	if c.Now() != 10 {
		t.Errorf("Now = %v, want 10", c.Now())
	}
	a, b := c.Tick(), c.Tick()
	if a != 11 || b != 12 {
		t.Errorf("ticks = %v, %v; want 11, 12", a, b)
	}
	c.Advance(100)
	if c.Tick() != 101 {
		t.Error("Advance did not move clock")
	}
	c.Advance(50) // no-op: never moves backwards
	if c.Now() != 101 {
		t.Error("Advance moved clock backwards")
	}
}
