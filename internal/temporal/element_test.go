package temporal

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genElement is the quick generator used by the property tests: a small
// random set of intervals over a bounded axis, canonicalized.
type genElement Element

// Generate implements quick.Generator.
func (genElement) Generate(rand *rand.Rand, size int) reflect.Value {
	n := rand.Intn(5)
	ivs := make([]Interval, n)
	for i := range ivs {
		from := Instant(rand.Intn(60))
		ivs[i] = Interval{From: from, To: from + Instant(1+rand.Intn(12))}
	}
	return reflect.ValueOf(genElement(NewElement(ivs...)))
}

func TestNewElementCanonicalizes(t *testing.T) {
	e := NewElement(
		NewInterval(10, 20),
		NewInterval(0, 5),
		NewInterval(5, 10), // adjacent to both neighbours: everything coalesces
		Interval{},         // empty intervals dropped
		NewInterval(30, 40),
	)
	want := Element{NewInterval(0, 20), NewInterval(30, 40)}
	if !e.Equal(want) {
		t.Fatalf("NewElement = %v, want %v", e, want)
	}
	if !e.IsCanonical() {
		t.Fatal("result not canonical")
	}
}

func TestElementContains(t *testing.T) {
	e := NewElement(NewInterval(0, 10), NewInterval(20, 30))
	for _, in := range []Instant{0, 9, 20, 29} {
		if !e.Contains(in) {
			t.Errorf("%v should contain %v", e, in)
		}
	}
	for _, out := range []Instant{-1, 10, 15, 30, 100} {
		if e.Contains(out) {
			t.Errorf("%v should not contain %v", e, out)
		}
	}
}

func TestElementCoversInterval(t *testing.T) {
	e := NewElement(NewInterval(0, 10), NewInterval(20, 30))
	if !e.CoversInterval(NewInterval(2, 8)) {
		t.Error("covered interval not reported")
	}
	if e.CoversInterval(NewInterval(5, 25)) {
		t.Error("interval spanning a gap reported covered")
	}
	if !e.CoversInterval(Interval{}) {
		t.Error("empty interval should be covered")
	}
}

func TestElementSetOps(t *testing.T) {
	a := NewElement(NewInterval(0, 10), NewInterval(20, 30))
	b := NewElement(NewInterval(5, 25))

	if got, want := a.Union(b), NewElement(NewInterval(0, 30)); !got.Equal(want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got, want := a.Intersect(b), NewElement(NewInterval(5, 10), NewInterval(20, 25)); !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got, want := a.Subtract(b), NewElement(NewInterval(0, 5), NewInterval(25, 30)); !got.Equal(want) {
		t.Errorf("Subtract = %v, want %v", got, want)
	}
	if got, want := b.Subtract(a), NewElement(NewInterval(10, 20)); !got.Equal(want) {
		t.Errorf("Subtract(b,a) = %v, want %v", got, want)
	}
}

func TestElementComplement(t *testing.T) {
	e := NewElement(NewInterval(0, 10))
	c := e.Complement()
	if c.Contains(5) {
		t.Error("complement contains element instant")
	}
	if !c.Contains(-100) || !c.Contains(10) {
		t.Error("complement missing outside instants")
	}
	if got := c.Complement(); !got.Equal(e) {
		t.Errorf("double complement = %v, want %v", got, e)
	}
}

func TestElementSpanDuration(t *testing.T) {
	e := NewElement(NewInterval(0, 10), NewInterval(20, 30))
	if got := e.Span(); !got.Equal(NewInterval(0, 30)) {
		t.Errorf("Span = %v", got)
	}
	if got := e.Duration(); got != 20 {
		t.Errorf("Duration = %d, want 20", got)
	}
	var empty Element
	if !empty.Span().IsEmpty() || empty.Duration() != 0 {
		t.Error("empty element span/duration wrong")
	}
}

// Property: union is commutative and contains both operands.
func TestPropUnionCommutative(t *testing.T) {
	f := func(ga, gb genElement) bool {
		a, b := Element(ga), Element(gb)
		u1, u2 := a.Union(b), b.Union(a)
		if !u1.Equal(u2) || !u1.IsCanonical() {
			return false
		}
		for _, iv := range a {
			if !u1.CoversInterval(iv) {
				return false
			}
		}
		for _, iv := range b {
			if !u1.CoversInterval(iv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: intersection is commutative, canonical, and contained in both.
func TestPropIntersectCommutative(t *testing.T) {
	f := func(ga, gb genElement) bool {
		a, b := Element(ga), Element(gb)
		i1, i2 := a.Intersect(b), b.Intersect(a)
		if !i1.Equal(i2) || !i1.IsCanonical() {
			return false
		}
		for _, iv := range i1 {
			if !a.CoversInterval(iv) || !b.CoversInterval(iv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: pointwise semantics — for every instant on the test axis, set
// membership of the algebraic results matches boolean combinations of
// membership in the operands.
func TestPropPointwiseSemantics(t *testing.T) {
	f := func(ga, gb genElement) bool {
		a, b := Element(ga), Element(gb)
		u := a.Union(b)
		in := a.Intersect(b)
		d := a.Subtract(b)
		for x := Instant(-2); x < 80; x++ {
			ia, ib := a.Contains(x), b.Contains(x)
			if u.Contains(x) != (ia || ib) {
				return false
			}
			if in.Contains(x) != (ia && ib) {
				return false
			}
			if d.Contains(x) != (ia && !ib) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: A \ B, A ∩ B, B \ A partition A ∪ B.
func TestPropPartition(t *testing.T) {
	f := func(ga, gb genElement) bool {
		a, b := Element(ga), Element(gb)
		parts := a.Subtract(b).Union(a.Intersect(b)).Union(b.Subtract(a))
		return parts.Equal(a.Union(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan over the bounded universe.
func TestPropDeMorgan(t *testing.T) {
	f := func(ga, gb genElement) bool {
		a, b := Element(ga), Element(gb)
		left := a.Union(b).Complement()
		right := a.Complement().Intersect(b.Complement())
		return left.Equal(right)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: element round-trips through the wire encoding.
func TestPropElementEncodingRoundTrip(t *testing.T) {
	f := func(ga genElement) bool {
		a := Element(ga)
		buf := AppendElement(nil, a)
		got, n, err := DecodeElement(buf)
		return err == nil && n == len(buf) && got.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestElementSubtractEdges(t *testing.T) {
	a := NewElement(NewInterval(0, 100))
	// Subtract a piece in the middle: splits.
	got := a.SubtractInterval(NewInterval(40, 60))
	want := NewElement(NewInterval(0, 40), NewInterval(60, 100))
	if !got.Equal(want) {
		t.Errorf("middle subtract = %v, want %v", got, want)
	}
	// Subtract everything.
	if got := a.SubtractInterval(All()); !got.IsEmpty() {
		t.Errorf("subtract all = %v, want empty", got)
	}
	// Subtract nothing.
	if got := a.SubtractInterval(Interval{}); !got.Equal(a) {
		t.Errorf("subtract empty = %v, want %v", got, a)
	}
	// Subtract disjoint.
	if got := a.SubtractInterval(NewInterval(200, 300)); !got.Equal(a) {
		t.Errorf("subtract disjoint = %v, want %v", got, a)
	}
}

func TestElementString(t *testing.T) {
	if s := (Element{}).String(); s != "{}" {
		t.Errorf("empty element = %q", s)
	}
	e := NewElement(NewInterval(1, 2), NewInterval(5, 9))
	if s := e.String(); s != "{[1, 2), [5, 9)}" {
		t.Errorf("element string = %q", s)
	}
}

func TestElementOverlapsInterval(t *testing.T) {
	e := NewElement(NewInterval(0, 10), NewInterval(20, 30))
	if !e.Overlaps(NewInterval(5, 25)) {
		t.Error("spanning interval should overlap")
	}
	if e.Overlaps(NewInterval(10, 20)) {
		t.Error("gap interval should not overlap")
	}
	if e.Overlaps(Interval{}) {
		t.Error("empty interval should not overlap")
	}
}

func TestIsCanonicalRejects(t *testing.T) {
	bad := []Element{
		{Interval{From: 5, To: 5}},                // empty constituent
		{NewInterval(0, 10), NewInterval(5, 15)},  // overlapping
		{NewInterval(0, 10), NewInterval(10, 15)}, // adjacent (not coalesced)
		{NewInterval(20, 30), NewInterval(0, 10)}, // unsorted
	}
	for _, e := range bad {
		if e.IsCanonical() {
			t.Errorf("IsCanonical(%v) = true, want false", e)
		}
	}
}
