// Package netfault provides deterministic fault injection for the network
// stack, in the spirit of internal/fault for the storage stack: a scripted
// net.Conn wrapper, a listener wrapper, and an in-process chaos proxy
// (proxy.go). Every injected failure is driven by exact byte offsets in
// the connection's two data streams plus a seeded pseudo-random source
// for timing jitter — never by wall-clock randomness — so a failing
// scenario replays from its script and seed.
//
// Faults at the byte level: silent corruption (one byte XORed at an exact
// stream offset), hard connection resets mid-frame, and freezes (the
// stream stalls for a scripted duration at an exact offset). Faults at
// the timing level: per-chunk latency with seeded jitter, bandwidth caps,
// and forced short reads/writes (chunking), which exercise every partial
// I/O path in the frame codec. Faults at accept time: the listener
// accepts and immediately destroys the connection, which a dialing client
// observes as a reset during the handshake.
package netfault

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrReset is returned by a wrapped connection's Read/Write after a
// scripted reset fired: the connection was torn down mid-stream.
var ErrReset = errors.New("netfault: scripted connection reset")

// PipeScript scripts one direction of a connection. Byte offsets are
// 1-based positions in that direction's stream; 0 means never. The zero
// value injects nothing.
type PipeScript struct {
	// Latency delays every chunk by this fixed duration.
	Latency time.Duration
	// Jitter adds a seeded pseudo-random delay in [0, Jitter) per chunk.
	Jitter time.Duration
	// BandwidthBPS caps throughput at this many bytes per second by
	// sleeping in proportion to each chunk's size (0 = unlimited).
	BandwidthBPS int
	// ChunkMax bounds the bytes moved per Read/Write call, forcing short
	// reads and partial writes (0 = unlimited).
	ChunkMax int
	// CorruptAt XORs 0xFF into the byte at this stream offset: silent
	// corruption the protocol's integrity layer must catch.
	CorruptAt int64
	// ResetAt tears the connection down once the stream reaches this
	// offset; bytes before it are delivered, the rest never arrive.
	ResetAt int64
	// FreezeAt stalls the stream for FreezeFor before the byte at this
	// offset moves, modelling a stalled peer or a blackholed link.
	FreezeAt  int64
	FreezeFor time.Duration
}

// zero reports whether the script injects nothing.
func (ps PipeScript) zero() bool { return ps == PipeScript{} }

// Script scripts one connection: a pipe script per direction plus the
// accept-time failure mode.
type Script struct {
	// RefuseAccept makes the wrapped listener (or proxy) accept the
	// connection and immediately destroy it.
	RefuseAccept bool
	// Read scripts bytes read from the wrapped connection; Write scripts
	// bytes written to it. Through the proxy, the wrapped side is the
	// client: Read is the client-to-server stream, Write the
	// server-to-client stream.
	Read  PipeScript
	Write PipeScript
}

// pipe tracks one direction's script execution state.
type pipe struct {
	sc  PipeScript
	rng *rand.Rand
	off int64 // bytes moved so far
}

// Conn wraps a net.Conn with a fault script. Offsets advance with the
// bytes actually moved, so corruption and resets land at exact stream
// positions regardless of how the peer sizes its I/O.
type Conn struct {
	conn net.Conn

	mu     sync.Mutex // serializes Close with sleep interruption
	closed chan struct{}
	once   sync.Once

	rmu sync.Mutex // one reader at a time (net.Conn contract allows this)
	rd  pipe
	wmu sync.Mutex
	wr  pipe
}

// Wrap wraps c with the script. The seed drives jitter only; all
// byte-offset faults are exact.
func Wrap(c net.Conn, sc Script, seed int64) *Conn {
	return &Conn{
		conn:   c,
		closed: make(chan struct{}),
		rd:     pipe{sc: sc.Read, rng: rand.New(rand.NewSource(seed))},
		wr:     pipe{sc: sc.Write, rng: rand.New(rand.NewSource(seed ^ 0x5DEECE66D))},
	}
}

// sleep blocks for d unless the connection closes first; it reports
// whether the full duration elapsed.
func (c *Conn) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.closed:
		return false
	}
}

// delay applies the script's timing faults for a chunk of n bytes.
func (c *Conn) delay(p *pipe, n int) bool {
	d := p.sc.Latency
	if p.sc.Jitter > 0 {
		d += time.Duration(p.rng.Int63n(int64(p.sc.Jitter)))
	}
	if p.sc.BandwidthBPS > 0 {
		d += time.Duration(int64(n) * int64(time.Second) / int64(p.sc.BandwidthBPS))
	}
	return c.sleep(d)
}

// clip bounds a requested chunk size so byte-offset events land exactly
// on chunk boundaries where they must (reset truncates the stream).
func (p *pipe) clip(n int) int {
	if p.sc.ChunkMax > 0 && n > p.sc.ChunkMax {
		n = p.sc.ChunkMax
	}
	if r := p.sc.ResetAt; r > 0 && p.off < r && p.off+int64(n) > r {
		n = int(r - p.off)
	}
	return n
}

// mutate advances the pipe over the moved bytes: corruption lands in buf
// (which covers exactly those bytes), freezes stall. It reports whether
// the stream has reached its scripted reset point — the caller closes,
// after the bytes before the cut have been delivered.
func (c *Conn) mutate(p *pipe, buf []byte) (resetNow bool) {
	lo, hi := p.off, p.off+int64(len(buf))
	if at := p.sc.CorruptAt; at > lo && at <= hi {
		buf[at-lo-1] ^= 0xFF
	}
	if at := p.sc.FreezeAt; at > lo && at <= hi {
		c.sleep(p.sc.FreezeFor)
	}
	p.off = hi
	return p.sc.ResetAt > 0 && p.off >= p.sc.ResetAt
}

// Read implements net.Conn.
func (c *Conn) Read(b []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	p := &c.rd
	if p.sc.zero() {
		return c.conn.Read(b)
	}
	if r := p.sc.ResetAt; r > 0 && p.off >= r {
		return 0, ErrReset
	}
	n := p.clip(len(b))
	if n == 0 && len(b) > 0 { // reset lands exactly here
		c.Close()
		return 0, ErrReset
	}
	if !c.delay(p, n) {
		return 0, ErrReset
	}
	n, err := c.conn.Read(b[:n])
	if n > 0 && c.mutate(p, b[:n]) {
		c.Close()
		return n, nil // deliver the final bytes; next call reports the reset
	}
	return n, err
}

// Write implements net.Conn, moving the buffer in scripted chunks. The
// caller's bytes are copied before corruption so the fault never mutates
// application memory.
func (c *Conn) Write(b []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	p := &c.wr
	if p.sc.zero() {
		return c.conn.Write(b)
	}
	written := 0
	for written < len(b) {
		if r := p.sc.ResetAt; r > 0 && p.off >= r {
			return written, ErrReset
		}
		n := p.clip(len(b) - written)
		if n == 0 {
			c.Close()
			return written, ErrReset
		}
		if !c.delay(p, n) {
			return written, ErrReset
		}
		chunk := make([]byte, n)
		copy(chunk, b[written:written+n])
		resetNow := c.mutate(p, chunk) // corrupt/freeze before the bytes hit the wire
		m, err := c.conn.Write(chunk)
		written += m
		if err != nil {
			return written, err
		}
		if resetNow { // the cut lands after these bytes; nothing more crosses
			c.Close()
			return written, ErrReset
		}
	}
	return written, nil
}

// Close implements net.Conn, interrupting any in-flight scripted sleep.
func (c *Conn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.conn.Close()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.conn.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.conn.SetWriteDeadline(t) }

// Listener wraps a net.Listener: each accepted connection gets the script
// for its 0-based accept index, and RefuseAccept destroys the connection
// before the application sees it.
type Listener struct {
	net.Listener
	seed      int64
	scriptFor func(i int) Script

	mu  sync.Mutex
	idx int
}

// WrapListener wraps ln. scriptFor maps the accept index to a script; a
// nil scriptFor injects nothing.
func WrapListener(ln net.Listener, seed int64, scriptFor func(i int) Script) *Listener {
	if scriptFor == nil {
		scriptFor = func(int) Script { return Script{} }
	}
	return &Listener{Listener: ln, seed: seed, scriptFor: scriptFor}
}

// Accept implements net.Listener, applying accept-time failures.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		i := l.idx
		l.idx++
		l.mu.Unlock()
		sc := l.scriptFor(i)
		if sc.RefuseAccept {
			abortConn(conn)
			continue
		}
		return Wrap(conn, sc, l.seed+int64(i)*7919), nil
	}
}

// abortConn destroys a connection as abruptly as the platform allows: a
// zero linger makes the close send RST rather than FIN where supported.
func abortConn(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

// interface assertions
var (
	_ net.Conn     = (*Conn)(nil)
	_ net.Listener = (*Listener)(nil)
)
