package netfault

import (
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is an in-process chaos proxy: it listens on an ephemeral loopback
// port, forwards every accepted connection to a backend address, and runs
// each connection's bytes through the fault script for its accept index.
// The client-facing side of each proxied connection is the wrapped one,
// so a script's Read pipe is the client-to-server stream and its Write
// pipe the server-to-client stream.
//
// The proxy tracks its live connections: Conns reporting zero after a
// scenario is the harness's leaked-connection check, and Close tears
// every proxied connection down and waits for the forwarders to exit.
type Proxy struct {
	ln        net.Listener
	backend   string
	seed      int64
	scriptFor func(i int) Script

	mu       sync.Mutex
	accepted int
	refused  int
	active   int
	conns    map[int][2]net.Conn
	closed   bool
	wg       sync.WaitGroup
}

// NewProxy starts a proxy in front of backend. scriptFor maps each
// connection's 0-based accept index to its fault script (nil = none).
func NewProxy(backend string, seed int64, scriptFor func(i int) Script) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	if scriptFor == nil {
		scriptFor = func(int) Script { return Script{} }
	}
	p := &Proxy{ln: ln, backend: backend, seed: seed, scriptFor: scriptFor, conns: map[int][2]net.Conn{}}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Accepted returns how many connections the proxy has accepted (including
// refused ones) — the accept index the next connection will get is
// Accepted().
func (p *Proxy) Accepted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accepted
}

// Refused returns how many connections were destroyed at accept time.
func (p *Proxy) Refused() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.refused
}

// Conns returns the number of currently live proxied connections.
func (p *Proxy) Conns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

// Close stops accepting, destroys every live proxied connection, and
// waits for all forwarders to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closed = true
	conns := make([][2]net.Conn, 0, len(p.conns))
	for _, pair := range p.conns {
		conns = append(conns, pair)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, pair := range conns {
		pair[0].Close()
		pair[1].Close()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		idx := p.accepted
		p.accepted++
		sc := p.scriptFor(idx)
		if sc.RefuseAccept {
			p.refused++
			p.mu.Unlock()
			abortConn(conn)
			continue
		}
		p.mu.Unlock()

		backend, err := net.DialTimeout("tcp", p.backend, 5*time.Second)
		if err != nil {
			abortConn(conn)
			continue
		}
		client := Wrap(conn, sc, p.seed+int64(idx)*104729)

		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			backend.Close()
			return
		}
		p.conns[idx] = [2]net.Conn{client, backend}
		p.active++
		p.mu.Unlock()

		p.wg.Add(1)
		go p.pipe(idx, client, backend)
	}
}

// pipe forwards both directions until either side dies, then tears the
// pair down. Half-close is not modelled: the wire protocol never relies
// on it, and a chaos fault ending one direction should kill the
// connection the way a real middlebox failure would.
func (p *Proxy) pipe(idx int, client, backend net.Conn) {
	defer p.wg.Done()
	done := make(chan struct{}, 2)
	go func() {
		io.Copy(backend, client) // client-to-server: client reads are scripted
		done <- struct{}{}
	}()
	go func() {
		io.Copy(client, backend) // server-to-client: client writes are scripted
		done <- struct{}{}
	}()
	<-done
	client.Close()
	backend.Close()
	<-done

	p.mu.Lock()
	delete(p.conns, idx)
	p.active--
	p.mu.Unlock()
}
