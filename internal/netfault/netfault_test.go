package netfault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes every byte back.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); wg.Wait() }
}

// pipePair returns two ends of an in-memory connection.
func pipePair() (net.Conn, net.Conn) { return net.Pipe() }

func TestConnCorruptsExactOffset(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	// Corrupt the 5th byte written.
	w := Wrap(a, Script{Write: PipeScript{CorruptAt: 5}}, 1)

	go w.Write([]byte("0123456789"))
	got := make([]byte, 10)
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	want := []byte("0123456789")
	want[4] ^= 0xFF
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestConnCorruptsReadStream(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	r := Wrap(a, Script{Read: PipeScript{CorruptAt: 3, ChunkMax: 2}}, 1)

	go b.Write([]byte("abcdef"))
	got := make([]byte, 6)
	if _, err := io.ReadFull(r, got); err != nil {
		t.Fatal(err)
	}
	want := []byte("abcdef")
	want[2] ^= 0xFF
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestConnResetDeliversPrefixThenErrors(t *testing.T) {
	a, b := pipePair()
	defer b.Close()
	r := Wrap(a, Script{Read: PipeScript{ResetAt: 4}}, 1)

	go b.Write([]byte("abcdefgh"))
	got := make([]byte, 8)
	n, _ := io.ReadFull(r, got)
	if n != 4 || !bytes.Equal(got[:4], []byte("abcd")) {
		t.Fatalf("got %d bytes %q, want the 4-byte prefix", n, got[:n])
	}
	if _, err := r.Read(got); !errors.Is(err, ErrReset) {
		t.Fatalf("expected ErrReset after the cut, got %v", err)
	}
}

func TestConnWriteResetStopsMidStream(t *testing.T) {
	a, b := pipePair()
	defer b.Close()
	w := Wrap(a, Script{Write: PipeScript{ResetAt: 6, ChunkMax: 4}}, 1)

	got := make([]byte, 6)
	readDone := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(b, got)
		readDone <- err
	}()
	n, err := w.Write([]byte("0123456789"))
	if n != 6 || !errors.Is(err, ErrReset) {
		t.Fatalf("write moved %d bytes with err %v, want 6 and ErrReset", n, err)
	}
	if err := <-readDone; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("012345")) {
		t.Fatalf("peer saw %q", got)
	}
}

func TestConnChunkingForcesShortReads(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	r := Wrap(a, Script{Read: PipeScript{ChunkMax: 3}}, 1)

	go b.Write([]byte("0123456789"))
	buf := make([]byte, 10)
	n, err := r.Read(buf)
	if err != nil || n != 3 {
		t.Fatalf("first read: %d bytes, %v; want exactly ChunkMax=3", n, err)
	}
}

func TestConnFreezeStallsStream(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	const stall = 80 * time.Millisecond
	r := Wrap(a, Script{Read: PipeScript{FreezeAt: 1, FreezeFor: stall}}, 1)

	go b.Write([]byte("x"))
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < stall {
		t.Fatalf("read returned after %v, want at least %v", d, stall)
	}
}

func TestConnCloseInterruptsFreeze(t *testing.T) {
	a, b := pipePair()
	defer b.Close()
	r := Wrap(a, Script{Read: PipeScript{FreezeAt: 1, FreezeFor: time.Hour}}, 1)

	go b.Write([]byte("x"))
	done := make(chan struct{})
	go func() {
		buf := make([]byte, 1)
		r.Read(buf)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	r.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not interrupt a frozen read")
	}
}

// TestJitterIsSeededAndDeterministic asserts the jitter source is a pure
// function of the seed (wall-clock durations themselves carry scheduler
// noise, so the draw sequence is what determinism means here).
func TestJitterIsSeededAndDeterministic(t *testing.T) {
	p := Wrap(nil, Script{}, 7) // conn never touched; rng state only
	q := Wrap(nil, Script{}, 7)
	r := Wrap(nil, Script{}, 8)
	same, diff := true, true
	for i := 0; i < 16; i++ {
		a, b, c := p.rd.rng.Int63(), q.rd.rng.Int63(), r.rd.rng.Int63()
		same = same && a == b
		diff = diff && a == c
	}
	if !same {
		t.Fatal("same seed produced different jitter sequences")
	}
	if diff {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

func TestProxyPassThrough(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("hello through the proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q", got)
	}
	if p.Accepted() != 1 || p.Conns() != 1 {
		t.Fatalf("accepted=%d conns=%d", p.Accepted(), p.Conns())
	}
}

func TestProxyRefuseAccept(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, 1, func(i int) Script { return Script{RefuseAccept: i == 0} })
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// First dial: connection destroyed at accept. The dial itself may
	// succeed (the OS completes the handshake) but the first I/O fails.
	c, err := net.Dial("tcp", p.Addr())
	if err == nil {
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 1)
		if _, rerr := c.Read(buf); rerr == nil {
			t.Fatal("refused connection delivered data")
		}
		c.Close()
	}

	// Second dial goes through.
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	if _, err := io.ReadFull(c2, got); err != nil {
		t.Fatal(err)
	}
	if p.Refused() != 1 {
		t.Fatalf("refused=%d, want 1", p.Refused())
	}
}

func TestProxyCorruptionAndTeardown(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, 1, func(i int) Script {
		return Script{Write: PipeScript{CorruptAt: 2}} // server-to-client byte 2
	})
	if err != nil {
		t.Fatal(err)
	}

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	want := []byte("abcd")
	want[1] ^= 0xFF
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
	c.Close()

	// Teardown drains the live-connection count.
	deadline := time.Now().Add(5 * time.Second)
	for p.Conns() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("proxy still reports %d live conns", p.Conns())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestProxyResetTearsConnection(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, 1, func(i int) Script {
		return Script{Read: PipeScript{ResetAt: 3}} // cut client-to-server after 3 bytes
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	// The echo returns at most the 3 bytes that crossed before the cut,
	// then the connection dies; the client observes EOF or a reset.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	total := 0
	for {
		n, err := c.Read(buf[total:])
		total += n
		if err != nil {
			break
		}
	}
	if total > 3 {
		t.Fatalf("%d bytes crossed a connection cut at offset 3", total)
	}
}

func TestWrapListenerRefusesScriptedAccepts(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := WrapListener(raw, 1, func(i int) Script { return Script{RefuseAccept: i%2 == 0} })
	defer ln.Close()

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	// Dial twice: the first is destroyed (the dial itself may observe the
	// reset, depending on timing), the second served.
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			defer c.Close()
		}
	}
	select {
	case c := <-accepted:
		c.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("listener never surfaced the second connection")
	}
}
