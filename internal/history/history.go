// Package history provides step-function utilities over attribute
// histories: coalescing, temporal projection (when did a predicate hold),
// duration-weighted aggregates, and history differencing. These are the
// building blocks of the query layer's temporal operators.
package history

import (
	"fmt"
	"sort"

	"tcodm/internal/atom"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// Step is one piece of a step function: a value holding over an interval.
type Step struct {
	During temporal.Interval
	Val    value.V
}

// StepFunction is a valid-time step function: non-overlapping steps sorted
// by start. Gaps mean "no value" (Null).
type StepFunction []Step

// FromVersions projects versions (as returned by Manager.History, i.e.
// already filtered to one transaction time and sorted) into a step
// function.
func FromVersions(vs []atom.Version) StepFunction {
	out := make(StepFunction, 0, len(vs))
	for _, v := range vs {
		if v.Valid.IsEmpty() {
			continue
		}
		out = append(out, Step{During: v.Valid, Val: v.Val})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].During.From < out[j].During.From })
	return out
}

// Validate checks the non-overlap invariant.
func (f StepFunction) Validate() error {
	for i := 1; i < len(f); i++ {
		if f[i-1].During.Overlaps(f[i].During) {
			return fmt.Errorf("history: overlapping steps %v and %v", f[i-1].During, f[i].During)
		}
	}
	return nil
}

// At returns the value at instant t (Null in gaps).
func (f StepFunction) At(t temporal.Instant) value.V {
	i := sort.Search(len(f), func(i int) bool { return f[i].During.To > t })
	if i < len(f) && f[i].During.Contains(t) {
		return f[i].Val
	}
	return value.Null
}

// Coalesce merges adjacent steps carrying equal values — the canonical form
// temporal projection and aggregation expect.
func (f StepFunction) Coalesce() StepFunction {
	if len(f) == 0 {
		return nil
	}
	out := StepFunction{f[0]}
	for _, s := range f[1:] {
		last := &out[len(out)-1]
		if last.Val.Equal(s.Val) && last.During.To == s.During.From {
			last.During.To = s.During.To
			continue
		}
		out = append(out, s)
	}
	return out
}

// When returns the temporal element over which pred holds.
func (f StepFunction) When(pred func(value.V) bool) temporal.Element {
	var ivs []temporal.Interval
	for _, s := range f {
		if pred(s.Val) {
			ivs = append(ivs, s.During)
		}
	}
	return temporal.NewElement(ivs...)
}

// Clip restricts the function to a window.
func (f StepFunction) Clip(window temporal.Interval) StepFunction {
	var out StepFunction
	for _, s := range f {
		iv := s.During.Intersect(window)
		if !iv.IsEmpty() {
			out = append(out, Step{During: iv, Val: s.Val})
		}
	}
	return out
}

// Changes returns the number of value transitions (coalesced steps - 1;
// zero for empty or constant histories).
func (f StepFunction) Changes() int {
	c := f.Coalesce()
	if len(c) <= 1 {
		return 0
	}
	return len(c) - 1
}

// WeightedAvg returns the duration-weighted average of a numeric history
// over window, ignoring gaps. Returns ok=false when the window holds no
// bounded numeric steps.
func (f StepFunction) WeightedAvg(window temporal.Interval) (avg float64, ok bool) {
	var sum float64
	var dur float64
	for _, s := range f.Clip(window) {
		if !s.Val.Numeric() {
			continue
		}
		d := s.During.Duration()
		if d == int64(^uint64(0)>>1) {
			continue // unbounded step: undefined weight
		}
		sum += s.Val.FloatValue() * float64(d)
		dur += float64(d)
	}
	if dur == 0 {
		return 0, false
	}
	return sum / dur, true
}

// Extremum returns the maximum (or minimum) value over window.
func (f StepFunction) Extremum(window temporal.Interval, max bool) (value.V, bool) {
	var best value.V
	found := false
	for _, s := range f.Clip(window) {
		if s.Val.IsNull() {
			continue
		}
		if !found {
			best = s.Val
			found = true
			continue
		}
		cmp := s.Val.Compare(best)
		if (max && cmp > 0) || (!max && cmp < 0) {
			best = s.Val
		}
	}
	return best, found
}

// CoveredElement returns the temporal element where the function has any
// (non-Null) value.
func (f StepFunction) CoveredElement() temporal.Element {
	return f.When(func(v value.V) bool { return !v.IsNull() })
}

// DiffKind classifies one region of a history comparison.
type DiffKind uint8

const (
	// OnlyA: a has a value, b has none.
	OnlyA DiffKind = iota
	// OnlyB: b has a value, a has none.
	OnlyB
	// Differ: both have values and they differ.
	Differ
)

// DiffRegion is one maximal interval where two histories disagree.
type DiffRegion struct {
	During temporal.Interval
	Kind   DiffKind
	A, B   value.V
}

// Diff compares two step functions over window and returns the regions of
// disagreement in ascending order.
func Diff(a, b StepFunction, window temporal.Interval) []DiffRegion {
	a = a.Clip(window).Coalesce()
	b = b.Clip(window).Coalesce()
	// Sweep over the union of boundaries.
	cuts := map[temporal.Instant]bool{window.From: true, window.To: true}
	for _, s := range a {
		cuts[s.During.From] = true
		cuts[s.During.To] = true
	}
	for _, s := range b {
		cuts[s.During.From] = true
		cuts[s.During.To] = true
	}
	points := make([]temporal.Instant, 0, len(cuts))
	for t := range cuts {
		if window.Contains(t) || t == window.To {
			points = append(points, t)
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	var out []DiffRegion
	for i := 0; i+1 < len(points); i++ {
		iv := temporal.NewInterval(points[i], points[i+1])
		if iv.IsEmpty() {
			continue
		}
		va, vb := a.At(iv.From), b.At(iv.From)
		var kind DiffKind
		switch {
		case va.IsNull() && vb.IsNull():
			continue
		case vb.IsNull():
			kind = OnlyA
		case va.IsNull():
			kind = OnlyB
		case va.Equal(vb):
			continue
		default:
			kind = Differ
		}
		// Merge with the previous region when contiguous and identical.
		if n := len(out); n > 0 && out[n-1].During.To == iv.From &&
			out[n-1].Kind == kind && out[n-1].A.Equal(va) && out[n-1].B.Equal(vb) {
			out[n-1].During.To = iv.To
			continue
		}
		out = append(out, DiffRegion{During: iv, Kind: kind, A: va, B: vb})
	}
	return out
}
