package history

import (
	"math/rand"
	"testing"

	"tcodm/internal/atom"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

func sf(steps ...Step) StepFunction { return StepFunction(steps) }

func step(from, to temporal.Instant, v int64) Step {
	return Step{During: temporal.NewInterval(from, to), Val: value.Int(v)}
}

func TestFromVersionsSortsAndDropsEmpty(t *testing.T) {
	f := FromVersions([]atom.Version{
		{Valid: temporal.NewInterval(10, 20), Val: value.Int(2)},
		{Valid: temporal.Interval{}, Val: value.Int(9)},
		{Valid: temporal.NewInterval(0, 10), Val: value.Int(1)},
	})
	if len(f) != 2 || f[0].Val.AsInt() != 1 || f[1].Val.AsInt() != 2 {
		t.Fatalf("FromVersions = %+v", f)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAt(t *testing.T) {
	f := sf(step(0, 10, 1), step(20, 30, 2))
	if got := f.At(5); got.AsInt() != 1 {
		t.Errorf("At(5) = %v", got)
	}
	if got := f.At(15); !got.IsNull() {
		t.Errorf("At(15) = %v, want null (gap)", got)
	}
	if got := f.At(29); got.AsInt() != 2 {
		t.Errorf("At(29) = %v", got)
	}
	if got := f.At(30); !got.IsNull() {
		t.Errorf("At(30) = %v, want null", got)
	}
}

func TestCoalesce(t *testing.T) {
	f := sf(step(0, 10, 1), step(10, 20, 1), step(20, 30, 2), step(40, 50, 2))
	c := f.Coalesce()
	if len(c) != 3 {
		t.Fatalf("coalesced to %d steps: %+v", len(c), c)
	}
	if !c[0].During.Equal(temporal.NewInterval(0, 20)) {
		t.Errorf("first coalesced step = %v", c[0].During)
	}
	// The gap between 30 and 40 prevents merging equal values.
	if !c[2].During.Equal(temporal.NewInterval(40, 50)) {
		t.Errorf("last coalesced step = %v", c[2].During)
	}
	if f.Changes() != 2 {
		t.Errorf("Changes = %d", f.Changes())
	}
}

func TestWhen(t *testing.T) {
	f := sf(step(0, 10, 5), step(10, 20, 15), step(20, 30, 7), step(30, 40, 25))
	e := f.When(func(v value.V) bool { return v.AsInt() > 10 })
	want := temporal.NewElement(temporal.NewInterval(10, 20), temporal.NewInterval(30, 40))
	if !e.Equal(want) {
		t.Errorf("When = %v, want %v", e, want)
	}
}

func TestClip(t *testing.T) {
	f := sf(step(0, 100, 1))
	c := f.Clip(temporal.NewInterval(30, 60))
	if len(c) != 1 || !c[0].During.Equal(temporal.NewInterval(30, 60)) {
		t.Fatalf("Clip = %+v", c)
	}
	if got := f.Clip(temporal.NewInterval(200, 300)); len(got) != 0 {
		t.Errorf("Clip outside = %+v", got)
	}
}

func TestWeightedAvg(t *testing.T) {
	// 10 chronons at 100, 10 chronons at 200 -> avg 150.
	f := sf(step(0, 10, 100), step(10, 20, 200))
	avg, ok := f.WeightedAvg(temporal.NewInterval(0, 20))
	if !ok || avg != 150 {
		t.Errorf("WeightedAvg = %v, %v", avg, ok)
	}
	// Clipping the window shifts the weights: [5,20) = 5@100 + 10@200.
	avg, ok = f.WeightedAvg(temporal.NewInterval(5, 20))
	want := (5.0*100 + 10.0*200) / 15.0
	if !ok || avg != want {
		t.Errorf("WeightedAvg clipped = %v, want %v", avg, want)
	}
	// Empty window.
	if _, ok := f.WeightedAvg(temporal.NewInterval(50, 60)); ok {
		t.Error("WeightedAvg over a gap should report !ok")
	}
	// Unbounded steps are skipped.
	g := sf(Step{During: temporal.Open(0), Val: value.Int(5)})
	if _, ok := g.WeightedAvg(temporal.All()); ok {
		t.Error("unbounded step should not aggregate")
	}
}

func TestExtremum(t *testing.T) {
	f := sf(step(0, 10, 3), step(10, 20, 9), step(20, 30, 1))
	if v, ok := f.Extremum(temporal.NewInterval(0, 30), true); !ok || v.AsInt() != 9 {
		t.Errorf("max = %v, %v", v, ok)
	}
	if v, ok := f.Extremum(temporal.NewInterval(0, 30), false); !ok || v.AsInt() != 1 {
		t.Errorf("min = %v, %v", v, ok)
	}
	if v, ok := f.Extremum(temporal.NewInterval(0, 10), true); !ok || v.AsInt() != 3 {
		t.Errorf("windowed max = %v, %v", v, ok)
	}
	if _, ok := f.Extremum(temporal.NewInterval(100, 200), true); ok {
		t.Error("extremum over a gap should report !ok")
	}
}

func TestDiff(t *testing.T) {
	a := sf(step(0, 20, 1), step(20, 40, 2))
	b := sf(step(10, 30, 1), step(30, 40, 2))
	regions := Diff(a, b, temporal.NewInterval(0, 40))
	// [0,10): only a (1). [10,20): equal. [20,30): differ (2 vs 1).
	// [30,40): equal.
	if len(regions) != 2 {
		t.Fatalf("diff regions = %+v", regions)
	}
	if regions[0].Kind != OnlyA || !regions[0].During.Equal(temporal.NewInterval(0, 10)) {
		t.Errorf("region 0 = %+v", regions[0])
	}
	if regions[1].Kind != Differ || !regions[1].During.Equal(temporal.NewInterval(20, 30)) {
		t.Errorf("region 1 = %+v", regions[1])
	}
	if regions[1].A.AsInt() != 2 || regions[1].B.AsInt() != 1 {
		t.Errorf("region 1 values = %v vs %v", regions[1].A, regions[1].B)
	}
}

func TestDiffIdenticalAndDisjoint(t *testing.T) {
	a := sf(step(0, 10, 1))
	if regions := Diff(a, a, temporal.NewInterval(0, 20)); len(regions) != 0 {
		t.Errorf("self-diff = %+v", regions)
	}
	b := sf(step(10, 20, 2))
	regions := Diff(a, b, temporal.NewInterval(0, 20))
	if len(regions) != 2 || regions[0].Kind != OnlyA || regions[1].Kind != OnlyB {
		t.Errorf("disjoint diff = %+v", regions)
	}
}

// TestPropWhenPartition: When(p) and When(!p) partition the covered
// element, for random step functions.
func TestPropWhenPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		var f StepFunction
		at := temporal.Instant(0)
		for i := 0; i < rng.Intn(8); i++ {
			at += temporal.Instant(rng.Intn(5))
			length := temporal.Instant(1 + rng.Intn(10))
			f = append(f, Step{During: temporal.NewInterval(at, at+length), Val: value.Int(int64(rng.Intn(4)))})
			at += length
		}
		pred := func(v value.V) bool { return v.AsInt()%2 == 0 }
		yes := f.When(pred)
		no := f.When(func(v value.V) bool { return !pred(v) })
		covered := f.CoveredElement()
		if !yes.Union(no).Equal(covered) {
			t.Fatalf("partition broken: %v + %v != %v", yes, no, covered)
		}
		if !yes.Intersect(no).IsEmpty() {
			t.Fatalf("partitions overlap: %v, %v", yes, no)
		}
	}
}

// TestPropCoalescePreservesSemantics: coalescing never changes At().
func TestPropCoalescePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 300; trial++ {
		var f StepFunction
		at := temporal.Instant(0)
		for i := 0; i < rng.Intn(10); i++ {
			length := temporal.Instant(1 + rng.Intn(6))
			f = append(f, Step{During: temporal.NewInterval(at, at+length), Val: value.Int(int64(rng.Intn(3)))})
			at += length
			at += temporal.Instant(rng.Intn(2))
		}
		c := f.Coalesce()
		for x := temporal.Instant(-1); x < at+2; x++ {
			if !f.At(x).Equal(c.At(x)) {
				t.Fatalf("At(%v) changed by coalescing: %v -> %v", x, f.At(x), c.At(x))
			}
		}
	}
}
