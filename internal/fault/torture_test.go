package fault

import (
	"testing"

	"tcodm/internal/atom"
)

// TestTortureAllStrategies runs the full crash-recovery torture matrix for
// every storage strategy: scripted power cuts at points spread over the
// whole I/O trace, with and without torn writes, write-through and
// page-cache device models, plus transient sync and read errors. Every
// scenario must recover (or detectably refuse) with zero invariant
// violations. The seed is logged so any failure replays exactly.
func TestTortureAllStrategies(t *testing.T) {
	const seed = 20260806
	cuts := 14
	if testing.Short() {
		cuts = 5
	}
	t.Logf("torture seed %d, %d cut points per variant", seed, cuts)
	total := 0
	for _, strat := range []atom.Strategy{atom.StrategyEmbedded, atom.StrategySeparated, atom.StrategyTuple} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			res, err := Run(Config{
				Strategy: strat,
				Seed:     seed,
				Cuts:     cuts,
				Dir:      t.TempDir(),
				Logf:     t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if res.Recovered == 0 {
				t.Error("no scenario exercised crash recovery")
			}
			total += res.Scenarios
		})
	}
	t.Logf("total scenarios: %d", total)
	if !testing.Short() && total < 200 {
		t.Errorf("only %d scenarios ran, want >= 200", total)
	}
}
