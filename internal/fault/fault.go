// Package fault provides deterministic fault injection for the storage
// stack: a Device wrapper and a WAL file wrapper that share one operation
// counter and execute a scripted failure — a power cut at exactly the k-th
// I/O, optionally tearing the in-flight write, plus transient sync and read
// errors. Because every injected failure is driven by the script and the
// op counter rather than by wall time or randomness, a failing scenario
// replays bit-for-bit from its script.
//
// Two durability models are supported. Unbuffered (the default) is
// write-through: a completed WritePage is on the device, and a cut merely
// stops future I/O (tearing the cut write if scripted). Buffered mode
// models an operating-system page cache: device writes are staged in memory
// and reach the device only at Sync, so a cut discards everything staged
// since the last sync — the classic lost-unsynced-pages crash.
package fault

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"tcodm/internal/storage"
	"tcodm/internal/wal"
)

// ErrPowerCut is returned by every operation at and after the scripted cut
// point. It models the process dying mid-I/O: callers cannot distinguish it
// from the kernel never returning.
var ErrPowerCut = errors.New("fault: power cut")

// ErrInjected is returned by scripted transient failures (sync and read
// errors) that do not end the run.
var ErrInjected = errors.New("fault: injected I/O error")

// Script is a deterministic failure plan. The zero value injects nothing.
type Script struct {
	// CutAtOp cuts power at the k-th counted operation (1-based; 0 = never).
	// The cut operation itself does not complete: a write is dropped (or
	// torn, below), a sync does not reach the platter, a read fails.
	CutAtOp int
	// TearWrite applies the first TearBytes of the cut operation's payload
	// when the cut lands on a write, modelling a torn sector write. For a
	// device page the torn prefix lands over the page's previous content;
	// for a log append only the prefix bytes are written.
	TearWrite bool
	// TearBytes is the length of the torn prefix (default 512 if zero).
	TearBytes int
	// Buffered stages device writes in memory until Sync; the cut discards
	// staged writes. See the package comment.
	Buffered bool
	// SyncApply is, in buffered mode with the cut landing on a device Sync,
	// the number of staged page writes that still reach the device (in
	// staging order) before the cut. TearWrite additionally tears the next
	// staged write after those.
	SyncApply int
	// SyncErrAt makes the k-th Sync (device or log, 1-based; 0 = never)
	// fail once with ErrInjected without syncing.
	SyncErrAt int
	// ReadErrAt makes the k-th read (1-based; 0 = never) fail once with
	// ErrInjected.
	ReadErrAt int
}

// Report records what the injector actually did, for assertions and logs.
type Report struct {
	Ops      int  // operations counted
	Reads    int  // reads counted
	Syncs    int  // syncs counted
	Cut      bool // the power cut fired
	CutOp    int  // operation index it fired at
	TornPage int64 // device page torn at the cut (-1 = none)
	TornLog  bool // log append torn at the cut
	Dropped  int  // buffered device writes discarded by the cut
	SyncErrs int  // transient sync errors injected
	ReadErrs int  // transient read errors injected
}

// Injector holds the script, the shared operation counter, and the cut
// state for one scenario. One Injector is shared by the device and log
// wrappers of a database so the op counter spans both files.
type Injector struct {
	mu     sync.Mutex
	script Script
	report Report
	cut    bool
}

// NewInjector prepares a scenario from script.
func NewInjector(script Script) *Injector {
	if script.TearBytes <= 0 {
		script.TearBytes = 512
	}
	if script.TearBytes > storage.PageSize {
		script.TearBytes = storage.PageSize
	}
	return &Injector{script: script, report: Report{TornPage: -1}}
}

// Report returns a snapshot of what has been injected so far.
func (in *Injector) Report() Report {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.report
}

// Cut reports whether the power has been cut.
func (in *Injector) Cut() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cut
}

// opKind classifies counted operations.
type opKind uint8

const (
	opRead opKind = iota
	opWrite
	opSync
)

// step counts one operation and decides its fate:
// proceed — perform the operation normally;
// cutHere — this operation is the cut point (op-specific handling);
// failTransient — return ErrInjected without side effects;
// dead — the power is already off, return ErrPowerCut.
type verdict uint8

const (
	proceed verdict = iota
	cutHere
	failTransient
	dead
)

func (in *Injector) step(kind opKind) verdict {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cut {
		return dead
	}
	in.report.Ops++
	switch kind {
	case opRead:
		in.report.Reads++
	case opSync:
		in.report.Syncs++
	}
	if in.script.CutAtOp > 0 && in.report.Ops == in.script.CutAtOp {
		in.cut = true
		in.report.Cut = true
		in.report.CutOp = in.report.Ops
		return cutHere
	}
	if kind == opSync && in.script.SyncErrAt > 0 && in.report.Syncs == in.script.SyncErrAt {
		in.report.SyncErrs++
		return failTransient
	}
	if kind == opRead && in.script.ReadErrAt > 0 && in.report.Reads == in.script.ReadErrAt {
		in.report.ReadErrs++
		return failTransient
	}
	return proceed
}

// --- Device wrapper ---------------------------------------------------------

// Device wraps a storage.Device with fault injection. Not safe for use by
// more than one goroutine (neither is the single-writer engine beneath it).
type Device struct {
	inj *Injector
	dev storage.Device

	mu sync.Mutex
	// Buffered-mode staging: page images not yet applied to the device.
	staged map[storage.PageID][]byte
	order  []storage.PageID // first-staging order
	pages  storage.PageID   // logical size including staged growth
}

// NewDevice wraps dev with the injector's script.
func NewDevice(inj *Injector, dev storage.Device) *Device {
	return &Device{inj: inj, dev: dev, staged: map[storage.PageID][]byte{}, pages: dev.NumPages()}
}

// ReadPage implements storage.Device.
func (d *Device) ReadPage(id storage.PageID, buf []byte) error {
	switch d.inj.step(opRead) {
	case dead, cutHere:
		return ErrPowerCut
	case failTransient:
		return fmt.Errorf("reading page %d: %w", id, ErrInjected)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if img, ok := d.staged[id]; ok {
		if len(buf) != storage.PageSize {
			return fmt.Errorf("fault: read buffer has %d bytes, want %d", len(buf), storage.PageSize)
		}
		copy(buf, img)
		return nil
	}
	return d.dev.ReadPage(id, buf)
}

// WritePage implements storage.Device.
func (d *Device) WritePage(id storage.PageID, buf []byte) error {
	switch d.inj.step(opWrite) {
	case dead:
		return ErrPowerCut
	case cutHere:
		d.cutOnWrite(id, buf)
		return ErrPowerCut
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.inj.script.Buffered {
		if err := d.dev.WritePage(id, buf); err != nil {
			return err
		}
		if id == d.pages {
			d.pages++
		}
		return nil
	}
	// Buffered: stage the image; it reaches the device at Sync.
	if id > d.pages {
		return fmt.Errorf("fault: write of page %d would leave a hole (device has %d pages)", id, d.pages)
	}
	if _, ok := d.staged[id]; !ok {
		d.order = append(d.order, id)
	}
	img := make([]byte, storage.PageSize)
	copy(img, buf)
	d.staged[id] = img
	if id == d.pages {
		d.pages++
	}
	return nil
}

// cutOnWrite handles a cut landing on a WritePage: the write is dropped,
// or — with TearWrite — its first TearBytes land over the page's previous
// content (write-through mode only; a buffered write that was never synced
// cannot tear anything on the device).
func (d *Device) cutOnWrite(id storage.PageID, buf []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sc := d.inj.script
	if sc.Buffered {
		d.dropStagedLocked()
		return
	}
	if !sc.TearWrite {
		return
	}
	d.tearOntoDeviceLocked(id, buf, sc.TearBytes)
}

// tearOntoDeviceLocked writes prefix bytes of buf over page id's previous
// device content (zeros if the page is new) and records the casualty.
func (d *Device) tearOntoDeviceLocked(id storage.PageID, buf []byte, tearBytes int) {
	merged := make([]byte, storage.PageSize)
	if id < d.dev.NumPages() {
		if err := d.dev.ReadPage(id, merged); err != nil {
			return // device refused; nothing landed
		}
	}
	copy(merged[:tearBytes], buf[:tearBytes])
	if d.dev.WritePage(id, merged) == nil {
		d.inj.mu.Lock()
		d.inj.report.TornPage = int64(id)
		d.inj.mu.Unlock()
	}
}

// NumPages implements storage.Device.
func (d *Device) NumPages() storage.PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pages
}

// Sync implements storage.Device.
func (d *Device) Sync() error {
	switch d.inj.step(opSync) {
	case dead:
		return ErrPowerCut
	case cutHere:
		d.cutOnSync()
		return ErrPowerCut
	case failTransient:
		return fmt.Errorf("device sync: %w", ErrInjected)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.inj.script.Buffered {
		if err := d.applyStagedLocked(len(d.order), false); err != nil {
			return err
		}
	}
	return d.dev.Sync()
}

// cutOnSync handles a cut landing on a device Sync. Unbuffered, the writes
// are already down and only the fsync is lost — a no-op for a model without
// a disk cache. Buffered, the first SyncApply staged writes land (they were
// "in flight"), the next one optionally tears, and the rest are lost.
func (d *Device) cutOnSync() {
	d.mu.Lock()
	defer d.mu.Unlock()
	sc := d.inj.script
	if !sc.Buffered {
		return
	}
	n := sc.SyncApply
	if n > len(d.order) {
		n = len(d.order)
	}
	_ = d.applyStagedLocked(n, sc.TearWrite)
	d.dropStagedLocked()
}

// applyStagedLocked writes the first n staged pages to the device in
// staging order, optionally tearing the (n+1)-th. Applied entries are
// removed from the staging area.
func (d *Device) applyStagedLocked(n int, tearNext bool) error {
	for i := 0; i < n; i++ {
		id := d.order[i]
		if err := d.dev.WritePage(id, d.staged[id]); err != nil {
			return err
		}
	}
	if tearNext && n < len(d.order) {
		id := d.order[n]
		d.tearOntoDeviceLocked(id, d.staged[id], d.inj.script.TearBytes)
	}
	for i := 0; i < n; i++ {
		delete(d.staged, d.order[i])
	}
	d.order = d.order[n:]
	return nil
}

// dropStagedLocked discards everything staged (the cut ate the page cache).
func (d *Device) dropStagedLocked() {
	d.inj.mu.Lock()
	d.inj.report.Dropped += len(d.order)
	d.inj.mu.Unlock()
	d.staged = map[storage.PageID][]byte{}
	d.order = nil
	d.pages = d.dev.NumPages()
}

// Close implements storage.Device. Staged-but-unsynced writes are discarded,
// exactly as a crash would discard them; the torture harness closes through
// Engine.Crash, never through a clean path, once a fault has fired.
func (d *Device) Close() error {
	return d.dev.Close()
}

// --- WAL file wrapper -------------------------------------------------------

// logWrite is one staged log append.
type logWrite struct {
	off  int64
	data []byte
}

// LogFile wraps a wal.File with the same injector as the database's device,
// so the shared op counter spans both files. Writes are staged in memory and
// reach the file only at Sync — the OS page-cache model — so a power cut
// loses every unsynced append and "commit acknowledged" coincides exactly
// with "records durable" (the WAL syncs before acknowledging). A cut landing
// on a Sync with TearWrite set applies a strict prefix of the staged bytes,
// producing exactly the torn-tail record the WAL's recovery path must
// absorb; a strict prefix, because an append that landed every byte would
// not be torn but an in-doubt commit, which this model deliberately excludes.
type LogFile struct {
	inj *Injector
	f   wal.File

	mu     sync.Mutex
	staged []logWrite
}

// NewLogFile wraps f with the injector's script.
func NewLogFile(inj *Injector, f wal.File) *LogFile {
	return &LogFile{inj: inj, f: f}
}

// ReadAt implements io.ReaderAt, merging staged writes over file content.
func (l *LogFile) ReadAt(p []byte, off int64) (int, error) {
	switch l.inj.step(opRead) {
	case dead, cutHere:
		return 0, ErrPowerCut
	case failTransient:
		return 0, fmt.Errorf("log read: %w", ErrInjected)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n, err := l.f.ReadAt(p, off)
	if err != nil && err != io.EOF {
		return n, err
	}
	covered := n
	for _, w := range l.staged {
		lo, hi := w.off, w.off+int64(len(w.data))
		if hi <= off || lo >= off+int64(len(p)) {
			continue
		}
		src, dst := int64(0), lo-off
		if dst < 0 {
			src, dst = -dst, 0
		}
		m := copy(p[dst:], w.data[src:])
		if int(dst)+m > covered {
			covered = int(dst) + m
		}
	}
	if covered < len(p) {
		return covered, io.EOF
	}
	return covered, nil
}

// WriteAt implements io.WriterAt by staging the bytes until the next Sync.
func (l *LogFile) WriteAt(p []byte, off int64) (int, error) {
	switch l.inj.step(opWrite) {
	case dead:
		return 0, ErrPowerCut
	case cutHere:
		// The write never reached the page cache; earlier staged writes die
		// with it. Nothing to do — the wrapper is abandoned with the crash.
		return 0, ErrPowerCut
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	cp := make([]byte, len(p))
	copy(cp, p)
	l.staged = append(l.staged, logWrite{off: off, data: cp})
	return len(p), nil
}

// Sync implements wal.File: staged writes land, in order, then the file is
// synced.
func (l *LogFile) Sync() error {
	switch l.inj.step(opSync) {
	case dead:
		return ErrPowerCut
	case cutHere:
		l.cutOnSync()
		return ErrPowerCut
	case failTransient:
		return fmt.Errorf("log sync: %w", ErrInjected)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, w := range l.staged {
		if _, err := l.f.WriteAt(w.data, w.off); err != nil {
			return err
		}
	}
	l.staged = nil
	return l.f.Sync()
}

// cutOnSync handles a cut landing on a log Sync: with TearWrite, a strict
// prefix of the staged byte stream lands; without, nothing does.
func (l *LogFile) cutOnSync() {
	l.mu.Lock()
	defer l.mu.Unlock()
	sc := l.inj.script
	if sc.TearWrite {
		total := 0
		for _, w := range l.staged {
			total += len(w.data)
		}
		budget := sc.TearBytes
		if budget >= total {
			budget = total - 1
		}
		for _, w := range l.staged {
			if budget <= 0 {
				break
			}
			n := len(w.data)
			if n > budget {
				n = budget
			}
			if _, err := l.f.WriteAt(w.data[:n], w.off); err != nil {
				break
			}
			budget -= n
			l.inj.mu.Lock()
			l.inj.report.TornLog = true
			l.inj.mu.Unlock()
		}
	}
	l.staged = nil
}

// Truncate implements wal.File. The truncation is applied immediately
// (write-through): the WAL only truncates at checkpoints, after the pages
// it covers are already durable, and a truncate that is later undone by a
// crash merely re-replays records the page-LSN guard no-ops.
func (l *LogFile) Truncate(size int64) error {
	switch l.inj.step(opWrite) {
	case dead, cutHere:
		return ErrPowerCut
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.staged[:0]
	for _, w := range l.staged {
		if w.off < size {
			if end := size - w.off; end < int64(len(w.data)) {
				w.data = w.data[:end]
			}
			kept = append(kept, w)
		}
	}
	l.staged = kept
	return l.f.Truncate(size)
}

// Close implements wal.File. Staged writes are discarded, as a crash would.
func (l *LogFile) Close() error { return l.f.Close() }

// interface assertions
var _ storage.Device = (*Device)(nil)
var _ wal.File = (*LogFile)(nil)
