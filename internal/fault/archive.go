// Archive-migration torture: power cuts during the hot-to-cold tiering
// cut-over. A deep, fault-free history is built and fingerprinted, then the
// database is reopened with injection wired into all three files (device,
// WAL, archive) and Engine.Archive is cut at points spread across its whole
// I/O trace — with torn WAL tails and torn archive tails. After every cut
// the store is reopened twice (recovery must be idempotent), every answer
// on both sides of the watermark is compared byte-for-byte against the
// pre-archive fingerprint, and a fresh tiering run must still succeed.
package fault

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tcodm/internal/atom"
	"tcodm/internal/core"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// archiveScenario is one scripted failure during a tiering run.
type archiveScenario struct {
	name   string
	script Script
	// chopArc appends garbage to the archive file after the crash,
	// modelling a power cut mid segment-append beneath the block layer:
	// a torn tail past the committed frontier.
	chopArc bool
}

// RunArchive executes the archive-migration torture matrix for one
// strategy: a fault-free probe to count the tiering run's I/O operations
// and prove it migrates versions, then cut/tear/chop variants at every cut
// point plus transient sync and read errors, each in a fresh directory,
// each verified after recovery.
func RunArchive(cfg Config) (*Result, error) {
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 16
	}
	if cfg.Cuts <= 0 {
		cfg.Cuts = 14
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("fault: Config.Dir is required")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	res := &Result{}

	probe := runArchiveScenario(cfg, archiveScenario{name: "probe"})
	res.Scenarios++
	res.Clean++
	res.ProbeOps = probe.report.Ops
	res.Violations = append(res.Violations, probe.violations...)
	if len(probe.violations) > 0 {
		return res, fmt.Errorf("fault: archive probe violated invariants: %s", probe.violations[0])
	}
	if probe.archived == 0 {
		return res, fmt.Errorf("fault: archive probe migrated no versions; the matrix would be vacuous")
	}
	if res.ProbeOps < cfg.Cuts {
		return res, fmt.Errorf("fault: archive probe counted only %d ops for %d cut points", res.ProbeOps, cfg.Cuts)
	}
	logf("[%s] archive probe: %d ops, %d versions migrated", cfg.Strategy, res.ProbeOps, probe.archived)

	var scenarios []archiveScenario
	for k := 0; k < cfg.Cuts; k++ {
		cut := 1 + k*(res.ProbeOps-1)/max(1, cfg.Cuts-1)
		scenarios = append(scenarios,
			archiveScenario{name: fmt.Sprintf("arccut@%d", cut), script: Script{CutAtOp: cut}},
			archiveScenario{name: fmt.Sprintf("arctear@%d", cut), script: Script{CutAtOp: cut, TearWrite: true, TearBytes: 512}},
			archiveScenario{name: fmt.Sprintf("arcchop@%d", cut), script: Script{CutAtOp: cut}, chopArc: true},
		)
	}
	for _, s := range []int{1, 3} {
		scenarios = append(scenarios, archiveScenario{name: fmt.Sprintf("arcsyncerr@%d", s), script: Script{SyncErrAt: s}})
	}
	for _, r := range []int{2, 9} {
		scenarios = append(scenarios, archiveScenario{name: fmt.Sprintf("arcreaderr@%d", r), script: Script{ReadErrAt: r}})
	}

	for _, sc := range scenarios {
		out := runArchiveScenario(cfg, sc)
		res.Scenarios++
		switch out.outcome {
		case outcomeRecovered:
			res.Recovered++
		case outcomeRefused:
			res.Refused++
		case outcomeClean:
			res.Clean++
		}
		res.Replay.add(out.recovery)
		logf("[%s] %s: %s", cfg.Strategy, sc.name, out.outcome)
		res.Violations = append(res.Violations, out.violations...)
		if len(out.violations) > 0 {
			logf("[%s] %s: %d violation(s): %s", cfg.Strategy, sc.name, len(out.violations), out.violations[0])
		}
	}
	logf("[%s] %d archive scenarios: %d recovered, %d refused, %d clean, %d violations",
		cfg.Strategy, res.Scenarios, res.Recovered, res.Refused, res.Clean, len(res.Violations))
	return res, nil
}

// runArchiveScenario builds a deep history fault-free, runs the tiering
// migration with the scenario's script injected, crashes when the fault
// fires, recovers twice, and verifies the fingerprint each time. Like
// runScenario it never returns an error: everything unexpected becomes a
// violation.
func runArchiveScenario(cfg Config, sc archiveScenario) (out scenarioResult) {
	dir := filepath.Join(cfg.Dir, sc.name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		out.violations = append(out.violations, fmt.Sprintf("%s: mkdir: %v", sc.name, err))
		return out
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "db.tdb")
	bad := func(format string, args ...any) {
		out.violations = append(out.violations, sc.name+": "+fmt.Sprintf(format, args...))
	}

	// Phase 1: fault-free. Every fact below is durably committed before any
	// injection starts, so the fingerprint is the oracle: no fault during
	// the tiering run may change a single answer.
	ids, wm, maxTT, want, err := buildArchiveDB(path, cfg)
	if err != nil {
		bad("building history: %v", err)
		return out
	}

	// Phase 2: reopen with injection spanning device, WAL, and archive, and
	// run the migration until it completes or the fault kills it.
	inj := NewInjector(sc.script)
	transient := func() bool {
		r := inj.Report()
		return r.SyncErrs > 0 || r.ReadErrs > 0
	}
	crashed := false
	e, err := core.Open(injectedOptions(path, cfg, inj))
	if err != nil {
		crashed = true
		if !inj.Cut() && !transient() {
			bad("reopen for archival failed without a fault: %v", err)
		}
	} else {
		ar, err := e.Archive(wm)
		if err != nil && !inj.Cut() && transient() {
			// Transient fault: the migration rolled back whole; retry it.
			ar, err = e.Archive(wm)
		}
		out.archived = ar.Archived
		if err != nil {
			crashed = true
			_ = e.Crash()
			if !inj.Cut() {
				bad("archive failed without a power cut: %v", err)
			}
		} else if err := e.Close(); err != nil {
			crashed = true
			_ = e.Crash()
		}
	}
	out.report = inj.Report()

	if sc.chopArc && crashed {
		chopArchiveTail(path + ".arc")
	}

	// Phase 3: recover on the real files and hold the store to its oracle.
	e2, err := core.Open(core.Options{Path: path, PoolPages: cfg.PoolPages})
	if err != nil {
		if out.report.TornPage >= 0 {
			out.outcome = outcomeRefused
			return out
		}
		bad("reopen failed: %v", err)
		return out
	}
	out.recovery = e2.RecoveryStats()
	verifyArchiveAnswers(e2, ids, wm, maxTT, want, bad)

	// Double recovery off identical on-disk state: replaying the archive
	// frames again must be byte-identical overwrites.
	_ = e2.Crash()
	e3, err := core.Open(core.Options{Path: path, PoolPages: cfg.PoolPages})
	if err != nil {
		bad("second recovery failed: %v", err)
		return out
	}
	verifyArchiveAnswers(e3, ids, wm, maxTT, want, bad)

	// The store must still tier: a fresh run over the full history has to
	// succeed (it may find nothing left to move) and change no answer.
	if _, err := e3.Archive(maxTT); err != nil {
		bad("post-recovery archive: %v", err)
	}
	verifyArchiveAnswers(e3, ids, wm, maxTT, want, bad)
	if err := e3.Checkpoint(); err != nil {
		bad("post-recovery checkpoint: %v", err)
	}
	if err := e3.Close(); err != nil {
		bad("post-recovery close: %v", err)
	}
	sweepChecksums(path, bad)

	if crashed {
		out.outcome = outcomeRecovered
	} else {
		out.outcome = outcomeClean
	}
	return out
}

// buildArchiveDB commits the personnel schema, three employees, and 36
// updates whose valid-from points repeat in runs of three — monotone with
// repeats, so every strategy (including tuple, which archives only whole
// superseded snapshots) has transaction-closed versions below the
// watermark. Returns the ids, a watermark inside the history, the highest
// transaction time, and the pre-archive fingerprint.
func buildArchiveDB(path string, cfg Config) (ids []value.ID, wm, maxTT temporal.Instant, want string, err error) {
	e, err := core.Open(core.Options{
		Path: path, Strategy: cfg.Strategy, SyncOnCommit: true, PoolPages: cfg.PoolPages,
	})
	if err != nil {
		return nil, 0, 0, "", err
	}
	if err := installSchema(e); err != nil {
		_ = e.Crash()
		return nil, 0, 0, "", err
	}
	tx, err := e.Begin()
	if err != nil {
		_ = e.Crash()
		return nil, 0, 0, "", err
	}
	for i := 0; i < 3; i++ {
		id, err := tx.Insert("Emp", map[string]value.V{
			"name":   value.String_(fmt.Sprintf("arc%d", i)),
			"salary": value.Int(int64(100 * i)),
		}, 0)
		if err != nil {
			_ = e.Crash()
			return nil, 0, 0, "", err
		}
		ids = append(ids, id)
	}
	if err := tx.Commit(); err != nil {
		_ = e.Crash()
		return nil, 0, 0, "", err
	}
	for i := 1; i <= 36; i++ {
		tx, err := e.Begin()
		if err != nil {
			_ = e.Crash()
			return nil, 0, 0, "", err
		}
		// Valid-from i-(i%3): runs of three updates correcting the same
		// instant. The small value domain gives compaction equal-valued
		// runs to coalesce.
		from := temporal.Instant(i - i%3)
		if err := tx.Set(ids[i%3], "salary", value.Int(int64(i%4)), from); err != nil {
			_ = e.Crash()
			return nil, 0, 0, "", err
		}
		if i%5 == 0 {
			if err := tx.Set(ids[i%3], "name", value.String_(fmt.Sprintf("n%d", i%3)), from); err != nil {
				_ = e.Crash()
				return nil, 0, 0, "", err
			}
		}
		maxTT = tx.TT()
		if i == 18 {
			wm = tx.TT() + 1
		}
		if err := tx.Commit(); err != nil {
			_ = e.Crash()
			return nil, 0, 0, "", err
		}
	}
	want, err = archiveFingerprint(e, ids, wm, maxTT)
	if err != nil {
		_ = e.Crash()
		return nil, 0, 0, "", err
	}
	if err := e.Close(); err != nil {
		return nil, 0, 0, "", err
	}
	return ids, wm, maxTT, want, nil
}

// archiveFingerprint renders point states and histories across a grid that
// spans both sides of the watermark — deep ASOF answers (which a migrated
// store serves from the cold file) and hot ones alike.
func archiveFingerprint(e *core.Engine, ids []value.ID, wm, maxTT temporal.Instant) (string, error) {
	var sb strings.Builder
	for _, id := range ids {
		for _, tt := range []temporal.Instant{wm - 1, wm, maxTT, atom.Now} {
			for _, vt := range []temporal.Instant{0, 3, 9, 17, 33, 100} {
				st, err := e.StateAt(id, vt, tt)
				if err != nil {
					return "", fmt.Errorf("StateAt(%v, %v, %v): %w", id, vt, tt, err)
				}
				fmt.Fprintf(&sb, "%v@%v,%v %v %v\n", id, vt, tt, st.Alive, st.Vals)
			}
			hist, err := e.History(id, "salary", tt)
			if err != nil {
				return "", fmt.Errorf("History(%v, %v): %w", id, tt, err)
			}
			fmt.Fprintf(&sb, "%v hist@%v %v\n", id, tt, hist)
		}
	}
	return sb.String(), nil
}

// verifyArchiveAnswers holds a recovered engine to the pre-archive oracle
// and proves the query path works.
func verifyArchiveAnswers(e *core.Engine, ids []value.ID, wm, maxTT temporal.Instant,
	want string, bad func(string, ...any)) {
	got, err := archiveFingerprint(e, ids, wm, maxTT)
	if err != nil {
		bad("fingerprint after recovery: %v", err)
		return
	}
	if got != want {
		bad("answers diverged after recovery: %s", firstLineDiff(want, got))
	}
	if _, err := e.Query("SELECT (Emp.name, Emp.salary) FROM Emp"); err != nil {
		bad("query after recovery: %v", err)
	}
}

// firstLineDiff returns the first differing line pair for a readable
// violation message.
func firstLineDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: want %q, got %q", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("line count %d vs %d", len(al), len(bl))
}

// chopArchiveTail appends garbage past the archive's committed frontier, as
// a power cut mid segment-append would. Recovery must ignore it: the meta
// records the committed size and every replayed frame overwrites its own
// offset, so the tail is never read and eventually overwritten.
func chopArchiveTail(path string) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return // no archive file materialized before the crash
	}
	garbage := make([]byte, 301)
	for i := range garbage {
		garbage[i] = 0xC3
	}
	_, _ = f.Write(garbage)
	_ = f.Close()
}
