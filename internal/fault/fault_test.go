package fault

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tcodm/internal/storage"
	"tcodm/internal/wal"
)

// pageImage builds a full page of the given fill byte.
func pageImage(fill byte) []byte {
	buf := make([]byte, storage.PageSize)
	for i := range buf {
		buf[i] = fill
	}
	return buf
}

// driveScript runs a fixed I/O sequence against a scripted device and
// returns the final report plus the inner device contents.
func driveScript(t *testing.T, script Script) (Report, *storage.MemDevice) {
	t.Helper()
	inner := storage.NewMemDevice()
	inj := NewInjector(script)
	dev := NewDevice(inj, inner)
	buf := make([]byte, storage.PageSize)
	for i := 0; i < 6; i++ {
		_ = dev.WritePage(storage.PageID(i), pageImage(byte('A'+i)))
		if i%2 == 1 {
			_ = dev.Sync()
		}
		_ = dev.ReadPage(storage.PageID(i), buf)
	}
	_ = dev.Sync()
	return inj.Report(), inner
}

func TestInjectorDeterministicReplay(t *testing.T) {
	script := Script{CutAtOp: 7, TearWrite: true, TearBytes: 100}
	r1, _ := driveScript(t, script)
	r2, _ := driveScript(t, script)
	if r1 != r2 {
		t.Errorf("same script, different reports:\n  %+v\n  %+v", r1, r2)
	}
	if !r1.Cut || r1.CutOp != 7 {
		t.Errorf("cut did not fire at op 7: %+v", r1)
	}
}

func TestCutKillsAllLaterIO(t *testing.T) {
	inner := storage.NewMemDevice()
	inj := NewInjector(Script{CutAtOp: 2})
	dev := NewDevice(inj, inner)
	if err := dev.WritePage(0, pageImage(0x11)); err != nil {
		t.Fatalf("pre-cut write: %v", err)
	}
	if err := dev.WritePage(1, pageImage(0x22)); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("cut write: %v, want ErrPowerCut", err)
	}
	buf := make([]byte, storage.PageSize)
	if err := dev.ReadPage(0, buf); !errors.Is(err, ErrPowerCut) {
		t.Errorf("post-cut read: %v, want ErrPowerCut", err)
	}
	if err := dev.Sync(); !errors.Is(err, ErrPowerCut) {
		t.Errorf("post-cut sync: %v, want ErrPowerCut", err)
	}
	if !inj.Cut() {
		t.Error("injector does not report the cut")
	}
}

func TestTornWriteMergesPrefixOverOldContent(t *testing.T) {
	inner := storage.NewMemDevice()
	inj := NewInjector(Script{CutAtOp: 2, TearWrite: true, TearBytes: 512})
	dev := NewDevice(inj, inner)
	if err := dev.WritePage(0, pageImage(0xAA)); err != nil {
		t.Fatal(err)
	}
	if err := dev.WritePage(0, pageImage(0xBB)); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("cut write: %v", err)
	}
	got := make([]byte, storage.PageSize)
	if err := inner.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	want := pageImage(0xAA)
	copy(want[:512], pageImage(0xBB)[:512])
	if !bytes.Equal(got, want) {
		t.Error("torn page is not new-prefix-over-old-content")
	}
	if r := inj.Report(); r.TornPage != 0 {
		t.Errorf("TornPage = %d, want 0", r.TornPage)
	}
	// A page torn this way must fail checksum verification — that is what
	// recovery's quarantine sweep keys on.
	if storage.VerifyPageChecksum(0, got) == nil {
		t.Error("torn half-and-half page passes checksum verification")
	}
}

func TestBufferedWritesInvisibleUntilSync(t *testing.T) {
	inner := storage.NewMemDevice()
	inj := NewInjector(Script{Buffered: true})
	dev := NewDevice(inj, inner)
	if err := dev.WritePage(0, pageImage(0x33)); err != nil {
		t.Fatal(err)
	}
	if inner.NumPages() != 0 {
		t.Errorf("staged write reached the device: inner has %d pages", inner.NumPages())
	}
	if dev.NumPages() != 1 {
		t.Errorf("wrapper NumPages = %d, want 1 (logical size includes staged growth)", dev.NumPages())
	}
	buf := make([]byte, storage.PageSize)
	if err := dev.ReadPage(0, buf); err != nil || buf[0] != 0x33 {
		t.Errorf("read-your-writes through staging failed: %v, buf[0]=%#x", err, buf[0])
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	if inner.NumPages() != 1 {
		t.Fatalf("sync did not land the staged page")
	}
	if err := inner.ReadPage(0, buf); err != nil || buf[0] != 0x33 {
		t.Errorf("device content after sync: %v, buf[0]=%#x", err, buf[0])
	}
}

func TestBufferedCutAtSyncDropsStaged(t *testing.T) {
	inner := storage.NewMemDevice()
	// Ops: three writes then the sync = op 4.
	inj := NewInjector(Script{Buffered: true, CutAtOp: 4})
	dev := NewDevice(inj, inner)
	for i := 0; i < 3; i++ {
		if err := dev.WritePage(storage.PageID(i), pageImage(byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := dev.Sync(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("cut sync: %v", err)
	}
	if inner.NumPages() != 0 {
		t.Errorf("cut sync landed pages: inner has %d", inner.NumPages())
	}
	if r := inj.Report(); r.Dropped != 3 {
		t.Errorf("Dropped = %d, want 3", r.Dropped)
	}
}

func TestBufferedCutAtSyncAppliesPrefix(t *testing.T) {
	inner := storage.NewMemDevice()
	inj := NewInjector(Script{Buffered: true, CutAtOp: 4, SyncApply: 2})
	dev := NewDevice(inj, inner)
	for i := 0; i < 3; i++ {
		if err := dev.WritePage(storage.PageID(i), pageImage(byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := dev.Sync(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("cut sync: %v", err)
	}
	// The first two staged writes were in flight and landed; the third died.
	if inner.NumPages() != 2 {
		t.Fatalf("inner has %d pages, want 2", inner.NumPages())
	}
	buf := make([]byte, storage.PageSize)
	for i := 0; i < 2; i++ {
		if err := inner.ReadPage(storage.PageID(i), buf); err != nil || buf[0] != byte(i+1) {
			t.Errorf("page %d after partial sync: %v, buf[0]=%#x", i, err, buf[0])
		}
	}
	if r := inj.Report(); r.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", r.Dropped)
	}
}

func TestTransientSyncAndReadErrors(t *testing.T) {
	inner := storage.NewMemDevice()
	inj := NewInjector(Script{SyncErrAt: 1, ReadErrAt: 2})
	dev := NewDevice(inj, inner)
	if err := dev.WritePage(0, pageImage(0x44)); err != nil {
		t.Fatal(err)
	}
	if err := dev.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("first sync: %v, want ErrInjected", err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatalf("second sync must succeed: %v", err)
	}
	buf := make([]byte, storage.PageSize)
	if err := dev.ReadPage(0, buf); err != nil {
		t.Fatalf("first read: %v", err)
	}
	if err := dev.ReadPage(0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("second read: %v, want ErrInjected", err)
	}
	if err := dev.ReadPage(0, buf); err != nil {
		t.Fatalf("third read must succeed: %v", err)
	}
	r := inj.Report()
	if r.SyncErrs != 1 || r.ReadErrs != 1 || r.Cut {
		t.Errorf("report = %+v, want one sync error, one read error, no cut", r)
	}
}

// openLogFixture returns a fault-wrapped log file over a real temp file.
func openLogFixture(t *testing.T, script Script) (*Injector, *LogFile, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	inj := NewInjector(script)
	return inj, NewLogFile(inj, f), path
}

func TestLogWritesStagedUntilSync(t *testing.T) {
	_, lf, path := openLogFixture(t, Script{})
	if _, err := lf.WriteAt([]byte("hello "), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := lf.WriteAt([]byte("world"), 6); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); len(got) != 0 {
		t.Errorf("unsynced log bytes reached the file: %q", got)
	}
	// Read-your-writes through the staging layer.
	buf := make([]byte, 11)
	if n, err := lf.ReadAt(buf, 0); err != nil || n != 11 || string(buf) != "hello world" {
		t.Errorf("ReadAt over staging = %d %v %q", n, err, buf)
	}
	if err := lf.Sync(); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "hello world" {
		t.Errorf("file after sync = %q", got)
	}
}

func TestLogCutAtSyncLosesUnsynced(t *testing.T) {
	// Ops: write, write, sync = op 3.
	_, lf, path := openLogFixture(t, Script{CutAtOp: 3})
	_, _ = lf.WriteAt([]byte("abcdef"), 0)
	_, _ = lf.WriteAt([]byte("ghijkl"), 6)
	if err := lf.Sync(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("cut sync: %v", err)
	}
	if got, _ := os.ReadFile(path); len(got) != 0 {
		t.Errorf("cut sync leaked bytes to the file: %q", got)
	}
}

func TestLogTornSyncLandsStrictPrefix(t *testing.T) {
	inj, lf, path := openLogFixture(t, Script{CutAtOp: 3, TearWrite: true, TearBytes: 8})
	_, _ = lf.WriteAt([]byte("abcdef"), 0)
	_, _ = lf.WriteAt([]byte("ghijkl"), 6)
	if err := lf.Sync(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("cut sync: %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "abcdefgh" {
		t.Errorf("torn log = %q, want the first 8 bytes", got)
	}
	if !inj.Report().TornLog {
		t.Error("TornLog not reported")
	}
}

func TestLogTearNeverLandsFullAppend(t *testing.T) {
	// TearBytes beyond the staged total must still land a *strict* prefix:
	// a fully-landed append would be an unacknowledged but durable commit,
	// which the model excludes so "acked" and "durable" stay equivalent.
	_, lf, path := openLogFixture(t, Script{CutAtOp: 2, TearWrite: true, TearBytes: 1 << 20})
	_, _ = lf.WriteAt([]byte("abcdef"), 0)
	if err := lf.Sync(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("cut sync: %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "abcde" {
		t.Errorf("torn log = %q, want %q (total-1 bytes)", got, "abcde")
	}
}

// TestWALAbsorbsTornTail drives a real WAL through the fault wrapper,
// tears its last append, and checks that recovery truncates the torn tail
// and replays the committed prefix.
func TestWALAbsorbsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Commit 1 syncs fine (write+sync = ops 1,2); commit 2's sync (op 4)
	// tears mid-append.
	inj := NewInjector(Script{CutAtOp: 4, TearWrite: true, TearBytes: 10})
	w := wal.OpenFile(NewLogFile(inj, f), 0, wal.Options{SyncOnCommit: true})
	if err := w.BeginTxn(1); err != nil {
		t.Fatal(err)
	}
	w.LogHeapInsert(storage.RID{Page: 1, Slot: 0}, []byte("first"))
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := w.BeginTxn(2); err != nil {
		t.Fatal(err)
	}
	w.LogHeapInsert(storage.RID{Page: 1, Slot: 1}, []byte("second"))
	if err := w.Commit(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("second commit: %v, want ErrPowerCut", err)
	}
	f.Close()
	if !inj.Report().TornLog {
		t.Fatal("the log tail was not torn")
	}

	w2, err := wal.Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	dev := storage.NewMemDevice()
	bp := storage.NewBufferPool(dev, 8)
	if err := storage.InitMeta(bp); err != nil {
		t.Fatal(err)
	}
	h := storage.NewHeap(bp, nil)
	stats, err := w2.Replay(h)
	if err != nil {
		t.Fatalf("replay over torn log: %v", err)
	}
	if stats.TornBytes == 0 {
		t.Error("replay did not truncate a torn tail")
	}
	if got, err := h.Fetch(storage.RID{Page: 1, Slot: 0}); err != nil || string(got) != "first" {
		t.Errorf("committed record: %q, %v", got, err)
	}
	if _, err := h.Fetch(storage.RID{Page: 1, Slot: 1}); err == nil {
		t.Error("record of the torn, unacknowledged commit was replayed")
	}
}
