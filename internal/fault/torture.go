package fault

import (
	"fmt"
	"os"
	"path/filepath"

	"tcodm/internal/atom"
	"tcodm/internal/core"
	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
	"tcodm/internal/wal"
	"tcodm/internal/workload"
)

// Config sizes one torture run (one storage strategy).
type Config struct {
	// Strategy is the physical mapping under test.
	Strategy atom.Strategy
	// Seed drives the workload generator; the whole run is a deterministic
	// function of (Strategy, Seed, Cuts, BatchSize, PoolPages).
	Seed int64
	// BatchSize is operations per transaction (default 5).
	BatchSize int
	// PoolPages sizes the buffer pool; small pools force mid-transaction
	// evictions (default 16).
	PoolPages int
	// Cuts is the number of power-cut points per fault variant, spread
	// evenly over the probe run's operation count (default 14).
	Cuts int
	// Dir is the scratch directory scenarios run in (required).
	Dir string
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Result summarizes a torture run.
type Result struct {
	Scenarios  int      // scenarios executed (including the probe)
	Recovered  int      // crashes whose reopen recovered successfully
	Refused    int      // opens refused after a torn device-page write (allowed)
	Clean      int      // scenarios whose fault never fired
	ProbeOps   int      // I/O operations counted in the fault-free probe
	Violations []string // invariant violations, "<scenario>: <detail>"
	// Replay aggregates the WAL replay statistics across every recovered
	// scenario's first reopen (the recovery the crash forced).
	Replay ReplaySummary
}

// ReplaySummary totals WAL replay work over many recoveries.
type ReplaySummary struct {
	Records   int   // log records read
	Committed int   // records of committed transactions
	Replayed  int   // redo operations applied
	TornBytes int64 // torn log tail bytes truncated
}

func (s *ReplaySummary) add(rs wal.RecoveryStats) {
	s.Records += rs.Records
	s.Committed += rs.Committed
	s.Replayed += rs.Replayed
	s.TornBytes += rs.TornBytes
}

// fact is one acknowledged (committed) attribute assignment: after recovery,
// StateAt(id(handle), from, atom.Now) must show the latest acked fact for
// (handle, attr) whose valid-from does not exceed from.
type fact struct {
	handle int
	attr   string
	val    value.V
	from   temporal.Instant
}

// scenario is one scripted failure.
type scenario struct {
	name   string
	script Script
	// chop appends a torn partial page to the database file after the
	// crash, modelling a power cut mid file-grow beneath the page layer.
	chop bool
}

// Run executes the torture matrix for one strategy: a fault-free probe to
// count the workload's I/O operations, then every fault variant at every
// cut point, each in a fresh directory, each verified after reopening.
func Run(cfg Config) (*Result, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 5
	}
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 16
	}
	if cfg.Cuts <= 0 {
		cfg.Cuts = 14
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("fault: Config.Dir is required")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ops := workload.Personnel(workload.PersonnelParams{
		Depts: 3, Emps: 10, UpdatesPerEmp: 3, MovesPerEmp: 1,
		TimeStep: 10, Seed: cfg.Seed,
	})
	res := &Result{}

	// Probe: the same workload with a script that injects nothing, to learn
	// the total operation count and to prove the harness itself is sound.
	probe := runScenario(cfg, ops, scenario{name: "probe"})
	res.Scenarios++
	res.Clean++
	res.ProbeOps = probe.report.Ops
	res.Violations = append(res.Violations, probe.violations...)
	if len(probe.violations) > 0 {
		return res, fmt.Errorf("fault: probe run violated invariants: %s", probe.violations[0])
	}
	if res.ProbeOps < cfg.Cuts {
		return res, fmt.Errorf("fault: probe counted only %d ops for %d cut points", res.ProbeOps, cfg.Cuts)
	}
	logf("[%s] probe: %d ops, %d batches", cfg.Strategy, res.ProbeOps, (len(ops)+cfg.BatchSize-1)/cfg.BatchSize)

	var scenarios []scenario
	for k := 0; k < cfg.Cuts; k++ {
		cut := 1 + k*(res.ProbeOps-1)/max(1, cfg.Cuts-1)
		scenarios = append(scenarios,
			scenario{name: fmt.Sprintf("cut@%d", cut), script: Script{CutAtOp: cut}},
			scenario{name: fmt.Sprintf("tear@%d", cut), script: Script{CutAtOp: cut, TearWrite: true, TearBytes: 512}},
			scenario{name: fmt.Sprintf("buf@%d", cut), script: Script{CutAtOp: cut, Buffered: true}},
			scenario{name: fmt.Sprintf("buftear@%d", cut), script: Script{CutAtOp: cut, Buffered: true, SyncApply: 2, TearWrite: true, TearBytes: 1000}},
			scenario{name: fmt.Sprintf("chop@%d", cut), script: Script{CutAtOp: cut}, chop: true},
		)
	}
	for _, s := range []int{1, 2, 5} {
		scenarios = append(scenarios, scenario{name: fmt.Sprintf("syncerr@%d", s), script: Script{SyncErrAt: s}})
	}
	for _, r := range []int{1, 5, 15} {
		scenarios = append(scenarios, scenario{name: fmt.Sprintf("readerr@%d", r), script: Script{ReadErrAt: r}})
	}

	for _, sc := range scenarios {
		out := runScenario(cfg, ops, sc)
		res.Scenarios++
		switch out.outcome {
		case outcomeRecovered:
			res.Recovered++
		case outcomeRefused:
			res.Refused++
		case outcomeClean:
			res.Clean++
		}
		res.Replay.add(out.recovery)
		if out.outcome == outcomeRecovered {
			logf("[%s] %s: %s (replayed %d/%d records, %d committed, %d torn bytes)",
				cfg.Strategy, sc.name, out.outcome,
				out.recovery.Replayed, out.recovery.Records, out.recovery.Committed, out.recovery.TornBytes)
		} else {
			logf("[%s] %s: %s", cfg.Strategy, sc.name, out.outcome)
		}
		res.Violations = append(res.Violations, out.violations...)
		if len(out.violations) > 0 {
			logf("[%s] %s: %d violation(s): %s", cfg.Strategy, sc.name, len(out.violations), out.violations[0])
		}
	}
	logf("[%s] %d scenarios: %d recovered, %d refused, %d clean, %d violations",
		cfg.Strategy, res.Scenarios, res.Recovered, res.Refused, res.Clean, len(res.Violations))
	return res, nil
}

const (
	outcomeClean     = "clean"
	outcomeRecovered = "recovered"
	outcomeRefused   = "refused"
)

type scenarioResult struct {
	outcome    string
	violations []string
	report     Report
	// recovery holds the first reopen's WAL replay statistics (zero when
	// the scenario never crashed or the open was refused).
	recovery wal.RecoveryStats
	// archived counts versions the scenario's tiering run migrated before
	// any fault fired (archive scenarios only; the probe uses it to prove
	// the matrix is not vacuous).
	archived int
}

// runScenario drives the workload against a fresh database with the
// scenario's script injected, crashes when the fault fires, reopens without
// injection, and verifies every invariant. It never returns an error:
// everything unexpected becomes a violation.
func runScenario(cfg Config, ops []workload.Op, sc scenario) (out scenarioResult) {
	dir := filepath.Join(cfg.Dir, sc.name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		out.violations = append(out.violations, fmt.Sprintf("%s: mkdir: %v", sc.name, err))
		return out
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "db.tdb")
	inj := NewInjector(sc.script)
	bad := func(format string, args ...any) {
		out.violations = append(out.violations, sc.name+": "+fmt.Sprintf(format, args...))
	}

	var (
		ids        []value.ID
		acked      []fact
		ackedTypes = map[string]int{} // type -> committed inserts
		schemaOK   bool
		crashed    bool
	)
	transient := func() bool {
		r := inj.Report()
		return r.SyncErrs > 0 || r.ReadErrs > 0
	}
	e, err := core.Open(injectedOptions(path, cfg, inj))
	if err != nil {
		crashed = true
		if !inj.Cut() && !transient() {
			bad("initial open failed without a fault firing: %v", err)
		}
	} else {
		if err := installSchema(e); err != nil {
			crashed = true
			_ = e.Crash()
			if !inj.Cut() && !transient() {
				bad("schema definition failed without a fault: %v", err)
			}
		} else {
			schemaOK = true
			crashed = !applyWorkload(e, ops, cfg.BatchSize, inj, &ids, &acked, ackedTypes, bad)
			if !crashed {
				if err := e.Close(); err != nil {
					crashed = true
					_ = e.Crash()
				}
			}
		}
	}
	out.report = inj.Report()

	if sc.chop && crashed {
		chopTail(path)
	}

	// Reopen on the real files — the injector is out of the picture, exactly
	// as after a machine reboot.
	e2, err := core.Open(core.Options{Path: path, PoolPages: cfg.PoolPages})
	if err != nil {
		// A torn device-page write may have destroyed the meta page or a
		// checkpointed page the log no longer covers; refusing to open is
		// then the correct, detected outcome. Anything else is a violation.
		if out.report.TornPage >= 0 {
			out.outcome = outcomeRefused
			return out
		}
		bad("reopen failed: %v", err)
		return out
	}
	out.recovery = e2.RecoveryStats()
	verify(e2, ids, acked, ackedTypes, schemaOK, bad)

	// Second recovery must be idempotent: crash the recovered engine before
	// it checkpoints and recover again off the identical on-disk state.
	_ = e2.Crash()
	e3, err := core.Open(core.Options{Path: path, PoolPages: cfg.PoolPages})
	if err != nil {
		bad("second recovery failed: %v", err)
		return out
	}
	verify(e3, ids, acked, ackedTypes, schemaOK, bad)

	// The database must still provide service: accept a write, checkpoint,
	// and close cleanly.
	if schemaOK {
		if err := postRecoveryWrite(e3); err != nil {
			bad("post-recovery write: %v", err)
		}
	}
	if err := e3.Checkpoint(); err != nil {
		bad("post-recovery checkpoint: %v", err)
	}
	if err := e3.Close(); err != nil {
		bad("post-recovery close: %v", err)
	}
	sweepChecksums(path, bad)

	if crashed {
		out.outcome = outcomeRecovered
	} else {
		out.outcome = outcomeClean
	}
	return out
}

// injectedOptions wires the fault device and log wrappers into the engine's
// open seams, sharing one injector so the op counter spans both files.
func injectedOptions(path string, cfg Config, inj *Injector) core.Options {
	return core.Options{
		Path:         path,
		Strategy:     cfg.Strategy,
		SyncOnCommit: true,
		PoolPages:    cfg.PoolPages,
		OpenDevice: func(p string) (storage.Device, error) {
			fd, err := storage.OpenFileDevice(p)
			if err != nil {
				return nil, err
			}
			return NewDevice(inj, fd), nil
		},
		OpenWAL: func(p string, opts wal.Options) (*wal.WAL, error) {
			f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
			if err != nil {
				return nil, err
			}
			info, err := f.Stat()
			if err != nil {
				f.Close()
				return nil, err
			}
			return wal.OpenFile(NewLogFile(inj, f), info.Size(), opts), nil
		},
		OpenArchive: func(p string) (*storage.Archive, error) {
			f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
			if err != nil {
				return nil, err
			}
			info, err := f.Stat()
			if err != nil {
				f.Close()
				return nil, err
			}
			// The archive file has the WAL file's exact contract, so the log
			// wrapper (staged writes, land at Sync, cut loses the rest) models
			// it too — and the shared injector keeps one op counter across all
			// three files.
			a, err := storage.OpenArchiveFile(NewLogFile(inj, f), info.Size())
			if err != nil {
				f.Close()
				return nil, err
			}
			return a, nil
		},
	}
}

// installSchema defines the personnel schema, one DDL transaction per type.
func installSchema(e *core.Engine) error {
	sch, err := workload.PersonnelSchema()
	if err != nil {
		return err
	}
	for _, name := range sch.AtomTypeNames() {
		at, _ := sch.AtomType(name)
		if err := e.DefineAtomType(*at); err != nil {
			return err
		}
	}
	for _, name := range sch.MoleculeTypeNames() {
		mt, _ := sch.MoleculeType(name)
		if err := e.DefineMoleculeType(*mt); err != nil {
			return err
		}
	}
	return nil
}

// applyWorkload runs ops in batches of batchSize, one transaction each,
// recording the facts of every acknowledged commit. A batch that fails for
// a transient reason (no power cut) is retried once — its effects were
// rolled back, so the replay is exact. Returns false once the database has
// crashed (the caller must not touch e afterwards).
func applyWorkload(e *core.Engine, ops []workload.Op, batchSize int, inj *Injector,
	ids *[]value.ID, acked *[]fact, ackedTypes map[string]int, bad func(string, ...any)) bool {
	inserts := 0
	for start := 0; start < len(ops); start += batchSize {
		end := start + batchSize
		if end > len(ops) {
			end = len(ops)
		}
		batch := ops[start:end]
		mark := len(*ids)
		if err := applyBatch(e, batch, ids); err != nil {
			*ids = (*ids)[:mark]
			if inj.Cut() {
				_ = e.Crash()
				return false
			}
			// Transient fault: the transaction rolled back; retry it.
			if err := applyBatch(e, batch, ids); err != nil {
				*ids = (*ids)[:mark]
				if !inj.Cut() {
					bad("batch %d failed twice without a power cut: %v", start/batchSize, err)
				}
				_ = e.Crash()
				return false
			}
		}
		// Acked: record the batch's facts against the now-known ids.
		for _, op := range batch {
			switch op.Kind {
			case workload.OpInsert:
				h := inserts
				inserts++
				ackedTypes[op.Type]++
				for attr, v := range op.Vals {
					*acked = append(*acked, fact{handle: h, attr: attr, val: v, from: op.From})
				}
				for attr, th := range op.Refs {
					*acked = append(*acked, fact{handle: h, attr: attr, val: value.Ref((*ids)[th]), from: op.From})
				}
			case workload.OpUpdate:
				*acked = append(*acked, fact{handle: op.Handle, attr: op.Attr, val: op.Val, from: op.From})
			case workload.OpUpdateRef:
				*acked = append(*acked, fact{handle: op.Handle, attr: op.Attr, val: value.Ref((*ids)[op.Target]), from: op.From})
			}
		}
	}
	return true
}

// applyBatch applies one batch inside one transaction. On any error the
// transaction is aborted and the error returned; ids may have grown and
// must be truncated by the caller.
func applyBatch(e *core.Engine, batch []workload.Op, ids *[]value.ID) error {
	tx, err := e.Begin()
	if err != nil {
		return err
	}
	for _, op := range batch {
		var err error
		switch op.Kind {
		case workload.OpInsert:
			vals := map[string]value.V{}
			for k, v := range op.Vals {
				vals[k] = v
			}
			for attr, h := range op.Refs {
				vals[attr] = value.Ref((*ids)[h])
			}
			var id value.ID
			id, err = tx.Insert(op.Type, vals, op.From)
			if err == nil {
				*ids = append(*ids, id)
			}
		case workload.OpUpdate:
			err = tx.Set((*ids)[op.Handle], op.Attr, op.Val, op.From)
		case workload.OpUpdateRef:
			err = tx.Set((*ids)[op.Handle], op.Attr, value.Ref((*ids)[op.Target]), op.From)
		case workload.OpAddRef:
			err = tx.AddRef((*ids)[op.Handle], op.Attr, (*ids)[op.Target], temporal.Open(op.From))
		case workload.OpRemoveRef:
			err = tx.RemoveRef((*ids)[op.Handle], op.Attr, (*ids)[op.Target], temporal.Open(op.From))
		case workload.OpDelete:
			err = tx.Delete((*ids)[op.Handle], op.From)
		}
		if err != nil {
			_ = tx.Abort()
			return err
		}
	}
	return tx.Commit()
}

// verify checks every invariant the recovered database must uphold:
// committed facts visible with the right time-sliced values, no effects of
// unacknowledged transactions (exact per-type atom counts), and a working
// query path.
func verify(e *core.Engine, ids []value.ID, acked []fact, ackedTypes map[string]int,
	schemaOK bool, bad func(string, ...any)) {
	for typ, n := range ackedTypes {
		got, err := e.IDs(typ)
		if err != nil {
			bad("IDs(%s): %v", typ, err)
			continue
		}
		if len(got) != n {
			bad("type %s has %d atoms, want %d (lost commit or leaked uncommitted insert)", typ, len(got), n)
		}
	}
	for fi, f := range acked {
		want := f.val
		for _, g := range acked[fi+1:] {
			if g.handle == f.handle && g.attr == f.attr && g.from <= f.from {
				want = g.val
			}
		}
		st, err := e.StateAt(ids[f.handle], f.from, atom.Now)
		if err != nil {
			bad("StateAt(handle %d, vt %d): %v", f.handle, f.from, err)
			continue
		}
		if got := st.Vals[f.attr]; !got.Equal(want) {
			bad("handle %d attr %s at vt %d = %v, want %v", f.handle, f.attr, f.from, got, want)
		}
	}
	if schemaOK {
		if _, err := e.Query("SELECT (Emp.name, Emp.salary) FROM Emp"); err != nil {
			bad("query after recovery: %v", err)
		}
	}
}

// postRecoveryWrite proves the recovered database still accepts commits.
func postRecoveryWrite(e *core.Engine) error {
	tx, err := e.Begin()
	if err != nil {
		return err
	}
	id, err := tx.Insert("Emp", map[string]value.V{
		"name": value.String_("post-recovery"), "salary": value.Int(1),
	}, 0)
	if err != nil {
		_ = tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	st, err := e.StateAt(id, 0, atom.Now)
	if err != nil {
		return err
	}
	if got := st.Vals["name"]; !got.Equal(value.String_("post-recovery")) {
		return fmt.Errorf("post-recovery insert read back %v", got)
	}
	return nil
}

// chopTail appends a torn partial page to the database file, as a power cut
// during a file grow would leave it. A file without a single complete page
// is left alone: chopping it would model a torn write of the very first
// page, which the device layer (correctly) refuses as not-a-database.
func chopTail(path string) {
	if info, err := os.Stat(path); err != nil || info.Size() < storage.PageSize {
		return
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return // no database file materialized before the crash
	}
	garbage := make([]byte, 517)
	for i := range garbage {
		garbage[i] = 0xA7
	}
	_, _ = f.Write(garbage)
	_ = f.Close()
}

// sweepChecksums re-reads the closed database file raw and verifies every
// page checksum: recovery plus checkpoint must leave no torn page behind.
func sweepChecksums(path string, bad func(string, ...any)) {
	data, err := os.ReadFile(path)
	if err != nil {
		bad("reading database for checksum sweep: %v", err)
		return
	}
	if len(data)%storage.PageSize != 0 {
		bad("database file is %d bytes, not page-aligned after close", len(data))
		return
	}
	for id := 0; id*storage.PageSize < len(data); id++ {
		page := data[id*storage.PageSize : (id+1)*storage.PageSize]
		if err := storage.VerifyPageChecksum(storage.PageID(id), page); err != nil {
			bad("checksum sweep: %v", err)
		}
	}
}

