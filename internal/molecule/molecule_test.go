package molecule

import (
	"testing"

	"tcodm/internal/atom"
	"tcodm/internal/schema"
	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// cadSchema models the classic design-database workload: assemblies
// containing parts, parts using other parts (a DAG via many-references).
func cadSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddAtomType(schema.AtomType{
		Name: "Assembly",
		Attrs: []schema.Attribute{
			{Name: "name", Kind: value.KindString, Required: true},
			{Name: "rev", Kind: value.KindInt, Temporal: true},
		},
	}))
	must(s.AddAtomType(schema.AtomType{
		Name: "Part",
		Attrs: []schema.Attribute{
			{Name: "name", Kind: value.KindString, Required: true},
			{Name: "weight", Kind: value.KindInt, Temporal: true},
			{Name: "assembly", Kind: value.KindID, Target: "Assembly", Card: schema.One, Temporal: true},
			{Name: "uses", Kind: value.KindID, Target: "Part", Card: schema.Many, Temporal: true},
		},
	}))
	must(s.AddMoleculeType(schema.MoleculeType{
		Name: "Design",
		Root: "Assembly",
		Edges: []schema.MoleculeEdge{
			{From: "Assembly", Attr: "assembly", To: "Part", Reverse: true},
			{From: "Part", Attr: "uses", To: "Part"},
		},
	}))
	s.Freeze()
	return s
}

func newCAD(t *testing.T, strat atom.Strategy) (*atom.Manager, *Builder) {
	t.Helper()
	dev := storage.NewMemDevice()
	pool := storage.NewBufferPool(dev, 256)
	if err := storage.InitMeta(pool); err != nil {
		t.Fatal(err)
	}
	heap := storage.NewHeap(pool, nil)
	m, err := atom.NewManager(heap, pool, cadSchema(t), atom.Options{Strategy: strat})
	if err != nil {
		t.Fatal(err)
	}
	return m, NewBuilder(m)
}

func forAllStrategies(t *testing.T, fn func(t *testing.T, m *atom.Manager, b *Builder)) {
	for _, s := range []atom.Strategy{atom.StrategyEmbedded, atom.StrategySeparated, atom.StrategyTuple} {
		t.Run(s.String(), func(t *testing.T) {
			m, b := newCAD(t, s)
			fn(t, m, b)
		})
	}
}

func TestMaterializeBasic(t *testing.T) {
	forAllStrategies(t, func(t *testing.T, m *atom.Manager, b *Builder) {
		asm, _ := m.Insert("Assembly", map[string]value.V{"name": value.String_("engine")}, 0, 1)
		p1, _ := m.Insert("Part", map[string]value.V{
			"name": value.String_("piston"), "assembly": value.Ref(asm),
		}, 0, 2)
		p2, _ := m.Insert("Part", map[string]value.V{
			"name": value.String_("ring"), "assembly": value.Ref(asm),
		}, 0, 3)
		if err := m.AddRef(p1, "uses", p2, temporal.Open(0), 4); err != nil {
			t.Fatal(err)
		}
		mt, _ := m.Schema().MoleculeType("Design")
		mol, err := b.Materialize(mt, asm, 10, atom.Now)
		if err != nil {
			t.Fatal(err)
		}
		if mol.Size() != 3 {
			t.Fatalf("molecule size = %d, want 3", mol.Size())
		}
		parts := mol.AtomsOfType("Part")
		if len(parts) != 2 {
			t.Fatalf("parts = %d", len(parts))
		}
		// Edge 0 (reverse assembly): asm -> p1, p2.
		kids := mol.ChildrenOf(asm, 0)
		if len(kids) != 2 {
			t.Errorf("assembly children = %v", kids)
		}
		// Edge 1 (uses): p1 -> p2.
		if kids := mol.ChildrenOf(p1, 1); len(kids) != 1 || kids[0] != p2 {
			t.Errorf("p1 uses = %v", kids)
		}
	})
}

func TestMaterializeTimeSlices(t *testing.T) {
	forAllStrategies(t, func(t *testing.T, m *atom.Manager, b *Builder) {
		asm, _ := m.Insert("Assembly", map[string]value.V{"name": value.String_("a")}, 0, 1)
		// p joins the assembly only at time 50.
		p, _ := m.Insert("Part", map[string]value.V{"name": value.String_("late")}, 0, 2)
		if err := m.UpdateAttr(p, "assembly", value.Ref(asm), temporal.Open(50), 3); err != nil {
			t.Fatal(err)
		}
		mt, _ := m.Schema().MoleculeType("Design")
		early, err := b.Materialize(mt, asm, 10, atom.Now)
		if err != nil {
			t.Fatal(err)
		}
		if early.Size() != 1 {
			t.Errorf("molecule at 10 has %d atoms, want 1", early.Size())
		}
		late, _ := b.Materialize(mt, asm, 60, atom.Now)
		if late.Size() != 2 {
			t.Errorf("molecule at 60 has %d atoms, want 2", late.Size())
		}
		// Deleting the part removes it from later slices.
		if err := m.Delete(p, 80, 4); err != nil {
			t.Fatal(err)
		}
		after, _ := b.Materialize(mt, asm, 90, atom.Now)
		if after.Size() != 1 {
			t.Errorf("molecule at 90 has %d atoms, want 1", after.Size())
		}
		// But the time slice at 60 still shows it (history preserved).
		again, _ := b.Materialize(mt, asm, 60, atom.Now)
		if again.Size() != 2 {
			t.Errorf("molecule at 60 after deletion has %d atoms, want 2", again.Size())
		}
	})
}

func TestMaterializeCycle(t *testing.T) {
	forAllStrategies(t, func(t *testing.T, m *atom.Manager, b *Builder) {
		asm, _ := m.Insert("Assembly", map[string]value.V{"name": value.String_("c")}, 0, 1)
		p1, _ := m.Insert("Part", map[string]value.V{
			"name": value.String_("x"), "assembly": value.Ref(asm),
		}, 0, 2)
		p2, _ := m.Insert("Part", map[string]value.V{"name": value.String_("y")}, 0, 3)
		// Cycle: p1 uses p2, p2 uses p1.
		if err := m.AddRef(p1, "uses", p2, temporal.Open(0), 4); err != nil {
			t.Fatal(err)
		}
		if err := m.AddRef(p2, "uses", p1, temporal.Open(0), 5); err != nil {
			t.Fatal(err)
		}
		mt, _ := m.Schema().MoleculeType("Design")
		mol, err := b.Materialize(mt, asm, 10, atom.Now)
		if err != nil {
			t.Fatal(err)
		}
		if mol.Size() != 3 {
			t.Fatalf("cyclic molecule size = %d, want 3", mol.Size())
		}
		// The cycle edge is still recorded.
		if kids := mol.ChildrenOf(p2, 1); len(kids) != 1 || kids[0] != p1 {
			t.Errorf("p2 uses = %v", kids)
		}
	})
}

func TestMaterializeDeadRoot(t *testing.T) {
	forAllStrategies(t, func(t *testing.T, m *atom.Manager, b *Builder) {
		asm, _ := m.Insert("Assembly", map[string]value.V{"name": value.String_("d")}, 10, 1)
		mt, _ := m.Schema().MoleculeType("Design")
		mol, err := b.Materialize(mt, asm, 5, atom.Now)
		if err != nil {
			t.Fatal(err)
		}
		if mol.Size() != 0 {
			t.Errorf("molecule before root birth has %d atoms", mol.Size())
		}
	})
}

func TestMaterializeWrongRootType(t *testing.T) {
	m, b := newCAD(t, atom.StrategyEmbedded)
	p, _ := m.Insert("Part", map[string]value.V{"name": value.String_("p")}, 0, 1)
	mt, _ := m.Schema().MoleculeType("Design")
	if _, err := b.Materialize(mt, p, 10, atom.Now); err == nil {
		t.Error("wrong root type accepted")
	}
}

func TestChangePointsAndHistory(t *testing.T) {
	forAllStrategies(t, func(t *testing.T, m *atom.Manager, b *Builder) {
		asm, _ := m.Insert("Assembly", map[string]value.V{"name": value.String_("h")}, 0, 1)
		p, _ := m.Insert("Part", map[string]value.V{"name": value.String_("p")}, 0, 2)
		if err := m.UpdateAttr(p, "assembly", value.Ref(asm), temporal.Open(20), 3); err != nil {
			t.Fatal(err)
		}
		if err := m.UpdateAttr(p, "weight", value.Int(5), temporal.Open(40), 4); err != nil {
			t.Fatal(err)
		}
		mt, _ := m.Schema().MoleculeType("Design")
		window := temporal.NewInterval(0, 100)
		steps, err := b.History(mt, asm, window, atom.Now)
		if err != nil {
			t.Fatal(err)
		}
		if len(steps) < 3 {
			t.Fatalf("history has %d steps, want >= 3: %+v", len(steps), steps)
		}
		// Steps tile the window.
		if steps[0].During.From != 0 {
			t.Errorf("first step starts at %v", steps[0].During.From)
		}
		for i := 1; i < len(steps); i++ {
			if steps[i-1].During.To != steps[i].During.From {
				t.Errorf("gap between steps %d and %d", i-1, i)
			}
		}
		if steps[len(steps)-1].During.To != 100 {
			t.Errorf("last step ends at %v", steps[len(steps)-1].During.To)
		}
		// Before 20 the molecule has 1 atom; after, 2; weight changes at 40.
		if steps[0].Mol.Size() != 1 {
			t.Errorf("step 0 size = %d", steps[0].Mol.Size())
		}
		last := steps[len(steps)-1].Mol
		if last.Size() != 2 {
			t.Errorf("last step size = %d", last.Size())
		}
		if got := last.Atoms[p].Vals["weight"].AsInt(); got != 5 {
			t.Errorf("weight in last step = %d", got)
		}
	})
}

func TestMaxAtomsGuard(t *testing.T) {
	m, b := newCAD(t, atom.StrategyEmbedded)
	b.MaxAtoms = 3
	asm, _ := m.Insert("Assembly", map[string]value.V{"name": value.String_("big")}, 0, 1)
	for i := 0; i < 5; i++ {
		if _, err := m.Insert("Part", map[string]value.V{
			"name": value.String_("p"), "assembly": value.Ref(asm),
		}, 0, 2); err != nil {
			t.Fatal(err)
		}
	}
	mt, _ := m.Schema().MoleculeType("Design")
	if _, err := b.Materialize(mt, asm, 10, atom.Now); err == nil {
		t.Error("runaway molecule not capped")
	}
}

func TestReverseManyEdge(t *testing.T) {
	// A molecule rooted at a Part that gathers the parts USING it (the
	// reverse direction of a many-reference): where-used analysis.
	m, _ := newCAD(t, atom.StrategySeparated)
	s := m.Schema().Clone()
	if err := s.AddMoleculeType(schema.MoleculeType{
		Name:  "WhereUsed",
		Root:  "Part",
		Edges: []schema.MoleculeEdge{{From: "Part", Attr: "uses", To: "Part", Reverse: true}},
	}); err != nil {
		t.Fatal(err)
	}
	s.Freeze()
	m.SetSchema(s)
	b := NewBuilder(m)

	base, _ := m.Insert("Part", map[string]value.V{"name": value.String_("bolt")}, 0, 1)
	var users []value.ID
	for i := 0; i < 3; i++ {
		u, _ := m.Insert("Part", map[string]value.V{"name": value.String_("asm")}, 0, 2)
		if err := m.AddRef(u, "uses", base, temporal.Open(temporal.Instant(10*i)), 3); err != nil {
			t.Fatal(err)
		}
		users = append(users, u)
	}
	mt, _ := s.MoleculeType("WhereUsed")
	// At t=5 only the first user links to the bolt.
	mol, err := b.Materialize(mt, base, 5, atom.Now)
	if err != nil {
		t.Fatal(err)
	}
	if mol.Size() != 2 {
		t.Errorf("where-used at 5 = %d atoms", mol.Size())
	}
	// At t=25 all three do (plus transitively their own users — none).
	mol, _ = b.Materialize(mt, base, 25, atom.Now)
	if mol.Size() != 4 {
		t.Errorf("where-used at 25 = %d atoms", mol.Size())
	}
	for _, u := range users {
		if _, ok := mol.Atoms[u]; !ok {
			t.Errorf("user %v missing from where-used molecule", u)
		}
	}
}
