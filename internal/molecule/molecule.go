// Package molecule implements dynamic complex-object derivation: a
// molecule is the connected set of atoms reached from a root atom by
// following the reference edges of a molecule type, materialized
// time-consistently — every atom and link is evaluated at the same
// (valid time, transaction time) point, so the result is the complex
// object as it existed at that moment.
package molecule

import (
	"fmt"
	"sort"

	"tcodm/internal/atom"
	"tcodm/internal/obs"
	"tcodm/internal/schema"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// Molecule is one materialized complex object.
type Molecule struct {
	Type *schema.MoleculeType
	Root value.ID
	// VT and TT are the time point the molecule was sliced at.
	VT, TT temporal.Instant
	// Atoms maps every constituent atom to its state at (VT, TT).
	Atoms map[value.ID]*atom.State
	// Children records the materialized edges: for each parent atom and
	// edge (by index into Type.Edges), the child atom IDs reached.
	Children map[value.ID]map[int][]value.ID
}

// Size returns the number of constituent atoms.
func (m *Molecule) Size() int { return len(m.Atoms) }

// AtomsOfType returns the constituent atoms of one atom type, ordered by ID.
func (m *Molecule) AtomsOfType(name string) []*atom.State {
	var out []*atom.State
	for _, st := range m.Atoms {
		if st.Type == name {
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ChildrenOf returns the atoms reached from parent over edge edgeIdx.
func (m *Molecule) ChildrenOf(parent value.ID, edgeIdx int) []value.ID {
	return m.Children[parent][edgeIdx]
}

// Builder materializes molecules against an atom manager.
type Builder struct {
	mgr *atom.Manager
	// MaxAtoms bounds a single molecule's size as a runaway guard.
	MaxAtoms int
}

// NewBuilder returns a builder over mgr.
func NewBuilder(mgr *atom.Manager) *Builder {
	return &Builder{mgr: mgr, MaxAtoms: 100_000}
}

// Materialize derives the molecule of type mt rooted at root, sliced at
// (vt, tt). Atoms not alive at vt are excluded (and not traversed
// through); cycles are handled by visiting each atom once. A dead or
// missing root yields a molecule with no atoms.
func (b *Builder) Materialize(mt *schema.MoleculeType, root value.ID, vt, tt temporal.Instant) (*Molecule, error) {
	return b.MaterializeAcc(mt, root, vt, tt, nil)
}

// MaterializeAcc is Materialize with exact resource accounting: every atom
// state read during the BFS charges pages and chain steps into acc.
func (b *Builder) MaterializeAcc(mt *schema.MoleculeType, root value.ID, vt, tt temporal.Instant, acc *obs.Resources) (*Molecule, error) {
	mol := &Molecule{
		Type: mt, Root: root, VT: vt, TT: tt,
		Atoms:    map[value.ID]*atom.State{},
		Children: map[value.ID]map[int][]value.ID{},
	}
	rootState, err := b.mgr.StateAtAcc(root, vt, tt, acc)
	if err != nil {
		return nil, err
	}
	if rootState.Type != mt.Root {
		return nil, fmt.Errorf("molecule: root atom %v has type %s, molecule %s wants %s",
			root, rootState.Type, mt.Name, mt.Root)
	}
	if !rootState.Alive {
		return mol, nil
	}
	mol.Atoms[root] = rootState
	queue := []value.ID{root}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		st := mol.Atoms[id]
		for ei, e := range mt.Edges {
			if e.From != st.Type {
				continue
			}
			targets, err := b.edgeTargets(st, e)
			if err != nil {
				return nil, err
			}
			for _, tid := range targets {
				if _, seen := mol.Atoms[tid]; seen {
					addChild(mol, id, ei, tid)
					continue
				}
				tst, err := b.mgr.StateAtAcc(tid, vt, tt, acc)
				if err != nil {
					return nil, fmt.Errorf("molecule: dangling reference %s edge %d -> %v: %w", mt.Name, ei, tid, err)
				}
				if !tst.Alive || tst.Type != e.To {
					continue
				}
				if len(mol.Atoms) >= b.MaxAtoms {
					return nil, fmt.Errorf("molecule: %s exceeded %d atoms", mt.Name, b.MaxAtoms)
				}
				mol.Atoms[tid] = tst
				addChild(mol, id, ei, tid)
				queue = append(queue, tid)
			}
		}
	}
	return mol, nil
}

func addChild(mol *Molecule, parent value.ID, edgeIdx int, child value.ID) {
	if mol.Children[parent] == nil {
		mol.Children[parent] = map[int][]value.ID{}
	}
	mol.Children[parent][edgeIdx] = append(mol.Children[parent][edgeIdx], child)
}

// edgeTargets evaluates one edge from an atom's state: forward edges read
// the reference attribute; reverse edges read the back-references
// maintained by the atom layer (the MAD model's bidirectional links).
func (b *Builder) edgeTargets(st *atom.State, e schema.MoleculeEdge) ([]value.ID, error) {
	if e.Reverse {
		return st.BackRefs[e.To+"."+e.Attr], nil
	}
	if ids, ok := st.Sets[e.Attr]; ok {
		out := make([]value.ID, 0, len(ids))
		for _, v := range ids {
			out = append(out, v.AsID())
		}
		return out, nil
	}
	v, ok := st.Vals[e.Attr]
	if !ok {
		return nil, fmt.Errorf("molecule: atom type %s has no attribute %q", st.Type, e.Attr)
	}
	if v.IsNull() {
		return nil, nil
	}
	return []value.ID{v.AsID()}, nil
}

// ChangePoints returns the valid-time instants within window at which the
// molecule rooted at root may change shape or content: the version and
// lifespan boundaries of every constituent atom, closed transitively (atoms
// that join the molecule mid-window contribute their boundaries too).
func (b *Builder) ChangePoints(mt *schema.MoleculeType, root value.ID, window temporal.Interval, tt temporal.Instant) ([]temporal.Instant, error) {
	points := map[temporal.Instant]bool{window.From: true}
	processed := map[value.ID]bool{}

	// Iterate to a fixpoint: materialize at each known point, add the
	// boundaries of every newly seen atom.
	for {
		ordered := sortedInstants(points)
		grew := false
		for _, p := range ordered {
			mol, err := b.Materialize(mt, root, p, tt)
			if err != nil {
				return nil, err
			}
			for id := range mol.Atoms {
				if processed[id] {
					continue
				}
				processed[id] = true
				grew = true
				bounds, err := b.atomBoundaries(id, tt)
				if err != nil {
					return nil, err
				}
				for _, t := range bounds {
					if window.Contains(t) {
						points[t] = true
					}
				}
			}
		}
		if !grew {
			break
		}
	}
	return sortedInstants(points), nil
}

// atomBoundaries lists the instants where an atom's recorded state changes.
func (b *Builder) atomBoundaries(id value.ID, tt temporal.Instant) ([]temporal.Instant, error) {
	a, err := b.mgr.Load(id)
	if err != nil {
		return nil, err
	}
	var out []temporal.Instant
	add := func(t temporal.Instant) {
		if t != temporal.Beginning && t != temporal.Forever {
			out = append(out, t)
		}
	}
	for _, iv := range a.Lifespan {
		add(iv.From)
		add(iv.To)
	}
	ett := tt
	if ett == atom.Now {
		ett = temporal.Forever - 1
	}
	for _, ad := range a.Attrs {
		for _, v := range ad.Versions {
			if !v.Trans.Contains(ett) {
				continue
			}
			add(v.Valid.From)
			add(v.Valid.To)
		}
	}
	for _, vs := range a.BackRefs {
		for _, v := range vs {
			if !v.Trans.Contains(ett) {
				continue
			}
			add(v.Valid.From)
			add(v.Valid.To)
		}
	}
	return out, nil
}

func sortedInstants(set map[temporal.Instant]bool) []temporal.Instant {
	out := make([]temporal.Instant, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HistoryStep is one interval of constancy in a molecule's history.
type HistoryStep struct {
	During temporal.Interval
	Mol    *Molecule
}

// History materializes the molecule at every change point within window,
// producing its step-wise history: a sequence of (interval, molecule)
// pairs covering the window.
func (b *Builder) History(mt *schema.MoleculeType, root value.ID, window temporal.Interval, tt temporal.Instant) ([]HistoryStep, error) {
	points, err := b.ChangePoints(mt, root, window, tt)
	if err != nil {
		return nil, err
	}
	var steps []HistoryStep
	for i, p := range points {
		end := window.To
		if i+1 < len(points) {
			end = points[i+1]
		}
		if p >= end {
			continue
		}
		mol, err := b.Materialize(mt, root, p, tt)
		if err != nil {
			return nil, err
		}
		steps = append(steps, HistoryStep{During: temporal.NewInterval(p, end), Mol: mol})
	}
	return steps, nil
}
