package atom

import (
	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// Replica-side incremental index maintenance.
//
// A replication follower replays the leader's WAL through the heap's redo
// path, which reproduces the heap byte-for-byte — but indexes are unlogged
// derived state, so the follower must maintain its own. Rebuilding from a
// full scan per batch would be O(heap) per commit; instead the follower
// calls NoteInsert/NoteUpdate/NoteDelete for each replayed record. The WAL
// logs logical payloads at home RIDs (stubs and overflow encodings are a
// physical concern below the log), so classification is identical to the
// RebuildIndexes scan.
//
// Only the primary and type indexes are maintained. The time and value
// indexes must stay disabled on a follower: a stale entry there would
// under-approximate a query's candidate set and return wrong answers, so
// the follower's query planner falls back to type scans (documented
// trade-off — plans may differ from the leader, results may not).

// noteTransOf folds every transaction-time instant bound inside an atom
// into maxTrans — the follower's clock low-water mark.
func (m *Manager) noteTransOf(a *Atom) {
	note := func(iv temporal.Interval) {
		if iv.From > m.maxTrans {
			m.maxTrans = iv.From
		}
		if iv.To != temporal.Forever && iv.To > m.maxTrans {
			m.maxTrans = iv.To
		}
	}
	for i := range a.Attrs {
		for _, v := range a.Attrs[i].Versions {
			note(v.Trans)
		}
	}
	for _, vs := range a.BackRefs {
		for _, v := range vs {
			note(v.Trans)
		}
	}
}

// noteID advances the surrogate allocator past id.
func (m *Manager) noteID(id value.ID) {
	if uint64(id) >= m.nextID {
		m.nextID = uint64(id) + 1
	}
}

// NoteInsert records that a replayed heap insert placed data at home RID
// rid, upserting the primary and type index entries it implies.
func (m *Manager) NoteInsert(rid storage.RID, data []byte) error {
	switch RecordKind(data) {
	case recFullAtom:
		a, err := DecodeFull(data)
		if err != nil {
			return err
		}
		if err := m.primary.Insert(primaryKey(a.ID), rid.Pack()); err != nil {
			return err
		}
		if err := m.typeIdx.Insert(typeKey(a.Type, a.ID), rid.Pack()); err != nil {
			return err
		}
		m.noteID(a.ID)
		m.noteTransOf(a)
	case recCurrentAtom:
		a, _, err := DecodeCurrent(data)
		if err != nil {
			return err
		}
		if err := m.primary.Insert(primaryKey(a.ID), rid.Pack()); err != nil {
			return err
		}
		if err := m.typeIdx.Insert(typeKey(a.Type, a.ID), rid.Pack()); err != nil {
			return err
		}
		m.noteID(a.ID)
		m.noteTransOf(a)
	case recSnapshot:
		s, err := DecodeSnapshot(data)
		if err != nil {
			return err
		}
		// Snapshots are written in commit order, so within an atom the
		// latest insert is the newest snapshot: log-order upsert realizes
		// the newest-TransFrom-wins rule of the rebuild scan.
		if err := m.primary.Insert(primaryKey(s.ID), rid.Pack()); err != nil {
			return err
		}
		if err := m.typeIdx.Insert(typeKey(s.Type, s.ID), rid.Pack()); err != nil {
			return err
		}
		m.noteID(s.ID)
		if s.TransFrom > m.maxTrans {
			m.maxTrans = s.TransFrom
		}
	default:
		// History segments are reached through current records; other
		// records (the engine catalog) are not the atom layer's to index.
	}
	return nil
}

// NoteUpdate records that a replayed heap update replaced the record at
// home RID rid with data. An in-place update never changes an atom's home
// RID or surrogate, so the index mappings stay put; only the clock
// low-water mark moves.
func (m *Manager) NoteUpdate(rid storage.RID, data []byte) error {
	switch RecordKind(data) {
	case recFullAtom:
		a, err := DecodeFull(data)
		if err != nil {
			return err
		}
		m.noteTransOf(a)
	case recCurrentAtom:
		a, _, err := DecodeCurrent(data)
		if err != nil {
			return err
		}
		m.noteTransOf(a)
	case recSnapshot:
		s, err := DecodeSnapshot(data)
		if err != nil {
			return err
		}
		if s.TransFrom > m.maxTrans {
			m.maxTrans = s.TransFrom
		}
	}
	return nil
}

// NoteDelete records that a replayed heap delete is about to remove the
// record at home RID rid. old is the record's payload before the delete
// (the caller fetches it pre-apply; deletes are logged without data). The
// index entries are removed only when they still point at rid — vacuum
// deletes of superseded snapshots must not unhook the newer one.
func (m *Manager) NoteDelete(rid storage.RID, old []byte) error {
	var id value.ID
	var typeName string
	switch RecordKind(old) {
	case recFullAtom:
		a, err := DecodeFull(old)
		if err != nil {
			return err
		}
		id, typeName = a.ID, a.Type
	case recCurrentAtom:
		a, _, err := DecodeCurrent(old)
		if err != nil {
			return err
		}
		id, typeName = a.ID, a.Type
	case recSnapshot:
		s, err := DecodeSnapshot(old)
		if err != nil {
			return err
		}
		id, typeName = s.ID, s.Type
	default:
		return nil
	}
	cur, ok, err := m.primary.Get(primaryKey(id))
	if err != nil {
		return err
	}
	if !ok || cur != rid.Pack() {
		return nil
	}
	if _, err := m.primary.Delete(primaryKey(id)); err != nil {
		return err
	}
	if _, err := m.typeIdx.Delete(typeKey(typeName, id)); err != nil {
		return err
	}
	return nil
}
