package atom

import (
	"testing"

	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

func TestReviveCreatesGappedLifespan(t *testing.T) {
	forAllStrategies(t, func(t *testing.T, m *Manager) {
		id, err := m.Insert("Emp", map[string]value.V{
			"name": value.String_("lazarus"), "salary": value.Int(100),
		}, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Delete(id, 50, 2); err != nil {
			t.Fatal(err)
		}
		if err := m.Revive(id, 100, 3); err != nil {
			t.Fatal(err)
		}
		// Alive in [0, 50) and [100, ∞); dead in the gap.
		cases := []struct {
			vt    temporal.Instant
			alive bool
		}{{10, true}, {49, true}, {50, false}, {75, false}, {100, true}, {500, true}}
		for _, c := range cases {
			st, err := m.StateAt(id, c.vt, Now)
			if err != nil {
				t.Fatal(err)
			}
			if st.Alive != c.alive {
				t.Errorf("alive at %v = %v, want %v", c.vt, st.Alive, c.alive)
			}
		}
		// The salary value is visible again after revival (embedded and
		// separated keep the open version; tuple carries it in the revived
		// snapshot).
		st, _ := m.StateAt(id, 200, Now)
		if got := st.Vals["salary"]; got.IsNull() || got.AsInt() != 100 {
			t.Errorf("salary after revival = %v", got)
		}
	})
}

func TestReviveLifespanElement(t *testing.T) {
	// Non-tuple strategies expose the multi-interval lifespan directly.
	for _, s := range []Strategy{StrategyEmbedded, StrategySeparated} {
		t.Run(s.String(), func(t *testing.T) {
			m := newManager(t, s)
			id, _ := m.Insert("Emp", map[string]value.V{"name": value.String_("x")}, 0, 1)
			_ = m.Delete(id, 50, 2)
			_ = m.Revive(id, 100, 3)
			life, err := m.Lifespan(id)
			if err != nil {
				t.Fatal(err)
			}
			want := temporal.NewElement(temporal.NewInterval(0, 50), temporal.Open(100))
			if !life.Equal(want) {
				t.Errorf("lifespan = %v, want %v", life, want)
			}
		})
	}
}

func TestTupleReviveRequiresDeleted(t *testing.T) {
	m := newManager(t, StrategyTuple)
	id, _ := m.Insert("Emp", map[string]value.V{"name": value.String_("y")}, 0, 1)
	if err := m.Revive(id, 10, 2); err == nil {
		t.Error("revive of a live atom accepted under tuple strategy")
	}
}

func TestDeleteReviveDeleteAgain(t *testing.T) {
	forAllStrategies(t, func(t *testing.T, m *Manager) {
		id, _ := m.Insert("Emp", map[string]value.V{"name": value.String_("z")}, 0, 1)
		_ = m.Delete(id, 10, 2)
		if err := m.Revive(id, 20, 3); err != nil {
			t.Fatal(err)
		}
		if err := m.Delete(id, 30, 4); err != nil {
			t.Fatal(err)
		}
		expect := []struct {
			vt    temporal.Instant
			alive bool
		}{{5, true}, {15, false}, {25, true}, {35, false}}
		for _, c := range expect {
			st, err := m.StateAt(id, c.vt, Now)
			if err != nil {
				t.Fatal(err)
			}
			if st.Alive != c.alive {
				t.Errorf("alive at %v = %v, want %v", c.vt, st.Alive, c.alive)
			}
		}
	})
}
