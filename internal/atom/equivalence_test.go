package atom

import (
	"fmt"
	"math/rand"
	"testing"

	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// The equivalence property: all three physical strategies realize the SAME
// logical temporal model. This test drives random operation sequences
// through every strategy and through a trivially correct in-memory shadow
// model, then cross-checks StateAt answers over a grid of (valid,
// transaction) time points. Divergence in any strategy is a bug in its
// mapping, not in the model.

// shadowVersion mirrors one recorded value.
type shadowVersion struct {
	valid temporal.Interval
	tfrom temporal.Instant
	tto   temporal.Instant // Forever while live
	val   value.V
}

func (v shadowVersion) visible(vt, tt temporal.Instant) bool {
	return v.valid.Contains(vt) && v.tfrom <= tt && tt < v.tto
}

// shadowAtom is the obviously correct model: flat version lists.
type shadowAtom struct {
	id    value.ID
	life  temporal.Element
	attrs map[string][]shadowVersion
}

type shadowDB struct {
	atoms map[value.ID]*shadowAtom
}

func newShadow() *shadowDB { return &shadowDB{atoms: map[value.ID]*shadowAtom{}} }

func (s *shadowDB) insert(id value.ID, vals map[string]value.V, from, tt temporal.Instant) {
	a := &shadowAtom{id: id, life: temporal.NewElement(temporal.Open(from)), attrs: map[string][]shadowVersion{}}
	for k, v := range vals {
		a.attrs[k] = []shadowVersion{{valid: temporal.Open(from), tfrom: tt, tto: temporal.Forever, val: v}}
	}
	s.atoms[id] = a
}

// update splices a value over iv exactly as the model specifies.
func (s *shadowDB) update(id value.ID, attr string, v value.V, iv temporal.Interval, tt temporal.Instant) {
	a := s.atoms[id]
	var out []shadowVersion
	for _, old := range a.attrs[attr] {
		if old.tto != temporal.Forever || !old.valid.Overlaps(iv) {
			out = append(out, old)
			continue
		}
		closed := old
		closed.tto = tt
		out = append(out, closed)
		for _, rest := range (temporal.Element{old.valid}).SubtractInterval(iv) {
			out = append(out, shadowVersion{valid: rest, tfrom: tt, tto: temporal.Forever, val: old.val})
		}
	}
	out = append(out, shadowVersion{valid: iv, tfrom: tt, tto: temporal.Forever, val: v})
	a.attrs[attr] = out
}

func (s *shadowDB) deleteFrom(id value.ID, from temporal.Instant) {
	a := s.atoms[id]
	a.life = a.life.SubtractInterval(temporal.Open(from))
}

func (s *shadowDB) valueAt(id value.ID, attr string, vt, tt temporal.Instant) value.V {
	a := s.atoms[id]
	vs := a.attrs[attr]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].visible(vt, tt) {
			return vs[i].val
		}
	}
	return value.Null
}

func (s *shadowDB) aliveAt(id value.ID, vt temporal.Instant) bool {
	return s.atoms[id].life.Contains(vt)
}

// TestStrategyEquivalenceForwardOps drives forward-only (open-ended)
// updates — the subset all three strategies support — and cross-checks.
func TestStrategyEquivalenceForwardOps(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runEquivalence(t, seed, Strategies(), false)
		})
	}
}

// TestStrategyEquivalenceRetroactive adds bounded-past splices, which the
// tuple strategy cannot express; embedded and separated must still agree
// with the shadow.
func TestStrategyEquivalenceRetroactive(t *testing.T) {
	for seed := int64(10); seed < 14; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runEquivalence(t, seed, []Strategy{StrategyEmbedded, StrategySeparated}, true)
		})
	}
}

// Strategies returns all strategies (test helper mirroring the experiments
// package to avoid an import cycle).
func Strategies() []Strategy {
	return []Strategy{StrategyEmbedded, StrategySeparated, StrategyTuple}
}

func runEquivalence(t *testing.T, seed int64, strategies []Strategy, retroactive bool) {
	t.Helper()
	const (
		nAtoms = 8
		nOps   = 120
	)
	managers := map[Strategy]*Manager{}
	for _, s := range strategies {
		managers[s] = newManager(t, s)
	}
	shadow := newShadow()

	rng := rand.New(rand.NewSource(seed))
	tt := temporal.Instant(0)
	var ids []value.ID
	// lastFrom tracks each atom's newest valid start, keeping tuple-legal
	// forward updates monotone per atom. Deleted atoms are retired from
	// the op pool: mutating a dead atom's history is legal under attribute
	// versioning but inexpressible under tuple versioning, so the common
	// subset avoids it.
	lastFrom := map[value.ID]temporal.Instant{}
	deleted := map[value.ID]bool{}
	live := func() []value.ID {
		var out []value.ID
		for _, id := range ids {
			if !deleted[id] {
				out = append(out, id)
			}
		}
		return out
	}
	vt := temporal.Instant(0)

	for op := 0; op < nOps; op++ {
		tt++
		vt += temporal.Instant(rng.Intn(5))
		switch {
		case len(ids) < nAtoms:
			vals := map[string]value.V{
				"name":   value.String_(fmt.Sprintf("a%d", len(ids))),
				"salary": value.Int(int64(rng.Intn(1000))),
			}
			var got value.ID
			for _, s := range strategies {
				id, err := managers[s].Insert("Emp", vals, vt, tt)
				if err != nil {
					t.Fatal(err)
				}
				got = id
			}
			shadow.insert(got, vals, vt, tt)
			ids = append(ids, got)
			lastFrom[got] = vt
		case retroactive && rng.Intn(4) == 0 && len(live()) > 0:
			// Bounded-past correction.
			pool := live()
			id := pool[rng.Intn(len(pool))]
			lo := temporal.Instant(rng.Intn(int(vt) + 1))
			hi := lo + temporal.Instant(1+rng.Intn(10))
			iv := temporal.NewInterval(lo, hi)
			v := value.Int(int64(rng.Intn(1000)))
			for _, s := range strategies {
				if err := managers[s].UpdateAttr(id, "salary", v, iv, tt); err != nil {
					t.Fatalf("strategy %s retroactive update: %v", s, err)
				}
			}
			shadow.update(id, "salary", v, iv, tt)
		case rng.Intn(10) == 0 && len(live()) > 2:
			// Valid-time delete of a random live atom from a future instant.
			pool := live()
			id := pool[rng.Intn(len(pool))]
			// Keep the deletion after the atom's newest version start so
			// the tuple chain's valid instants stay monotone.
			from := temporal.Max(vt, lastFrom[id]) + temporal.Instant(rng.Intn(5))
			for _, s := range strategies {
				if err := managers[s].Delete(id, from, tt); err != nil {
					t.Fatalf("strategy %s delete: %v", s, err)
				}
			}
			shadow.deleteFrom(id, from)
			deleted[id] = true
		default:
			// Forward update of a live atom, monotone per atom (tuple-legal).
			pool := live()
			if len(pool) == 0 {
				continue
			}
			id := pool[rng.Intn(len(pool))]
			from := lastFrom[id] + temporal.Instant(rng.Intn(6))
			v := value.Int(int64(rng.Intn(1000)))
			for _, s := range strategies {
				if err := managers[s].UpdateAttr(id, "salary", v, temporal.Open(from), tt); err != nil {
					t.Fatalf("strategy %s update: %v", s, err)
				}
			}
			shadow.update(id, "salary", v, temporal.Open(from), tt)
			lastFrom[id] = from
		}
	}

	// Cross-check a (vt, tt) grid, including Now.
	ttPoints := []temporal.Instant{1, tt / 4, tt / 2, tt - 1, tt, Now}
	for _, id := range ids {
		for probeVT := temporal.Instant(0); probeVT <= vt+10; probeVT += 3 {
			for _, probeTT := range ttPoints {
				effTT := probeTT
				if effTT == Now {
					effTT = temporal.Forever - 1
				}
				wantAlive := shadow.aliveAt(id, probeVT)
				want := shadow.valueAt(id, "salary", probeVT, effTT)
				for _, s := range Strategies() {
					m, ok := managers[s]
					if !ok {
						continue
					}
					st, err := m.StateAt(id, probeVT, probeTT)
					if err != nil {
						t.Fatalf("strategy %s StateAt(%v, %v, %v): %v", s, id, probeVT, probeTT, err)
					}
					// Tuple-strategy deletes are whole-snapshot events;
					// its alive semantics match only at the newest tt.
					if st.Alive != wantAlive && (s != StrategyTuple || probeTT == Now) {
						t.Fatalf("strategy %s: alive(%v at vt=%v tt=%v) = %v, shadow %v",
							s, id, probeVT, probeTT, st.Alive, wantAlive)
					}
					got := st.Vals["salary"]
					if !got.Equal(want) {
						t.Fatalf("strategy %s: salary(%v at vt=%v tt=%v) = %v, shadow %v",
							s, id, probeVT, probeTT, got, want)
					}
				}
			}
		}
	}
	// Histories agree with the shadow at the latest transaction time.
	for _, id := range ids {
		for _, s := range strategies {
			hist, err := managers[s].History(id, "salary", Now)
			if err != nil {
				t.Fatal(err)
			}
			// Spot-check the step function the history denotes. Values
			// outside the lifespan are implementation-defined (tuple
			// versioning truncates at deletion; attribute versioning keeps
			// open versions), so probe only within the lifespan.
			for probeVT := temporal.Instant(0); probeVT <= vt+10; probeVT += 7 {
				if !shadow.aliveAt(id, probeVT) {
					continue
				}
				var got value.V = value.Null
				for _, ver := range hist {
					if ver.Valid.Contains(probeVT) {
						got = ver.Val
						break
					}
				}
				want := shadow.valueAt(id, "salary", probeVT, temporal.Forever-1)
				if !got.Equal(want) {
					t.Fatalf("strategy %s: history of %v at vt=%v = %v, shadow %v", s, id, probeVT, got, want)
				}
			}
		}
	}
}
