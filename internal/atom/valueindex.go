package atom

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"tcodm/internal/index"
	"tcodm/internal/value"
)

// The value index maps (atom type, attribute, value, atom) to the atom, in
// the order-preserving key encoding, so equality and range predicates can
// prune candidate sets before states are materialized. Like the time
// index, it is version-grained and append-only: entries for superseded
// values remain until an index rebuild, and the executor re-evaluates the
// predicate on the materialized state, so stale entries cost time but
// never correctness.

// valueKey builds the index key for one (type, attr, value, atom) entry.
func valueKey(typeName, attr string, v value.V, id value.ID) []byte {
	k := valuePrefix(typeName, attr)
	k = value.AppendKey(k, v)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id))
	return append(k, b[:]...)
}

func valuePrefix(typeName, attr string) []byte {
	k := make([]byte, 0, len(typeName)+len(attr)+2)
	k = append(k, typeName...)
	k = append(k, 0)
	k = append(k, attr...)
	return append(k, 0)
}

// prefixUpperBound returns the smallest byte string greater than every
// string with the given prefix (nil when none exists).
func prefixUpperBound(prefix []byte) []byte {
	out := append([]byte(nil), prefix...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] < 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

// noteValue records a value-index entry for a freshly written version.
func (m *Manager) noteValue(typeName, attr string, v value.V, id value.ID) error {
	if m.valueIdx == nil || v.IsNull() {
		return nil
	}
	return m.idxPut(m.valueIdx, valueKey(typeName, attr, v, id), uint64(id))
}

// ValueIndexScan streams candidate atom IDs whose (typeName, attr) history
// contains a value standing in relation op ("=", "<", "<=", ">", ">=") to
// lit. Candidates are a superset: callers must re-check the predicate on
// the state they materialize. Returns an error when the value index is
// disabled.
func (m *Manager) ValueIndexScan(typeName, attr, op string, lit value.V, fn func(id value.ID) (bool, error)) error {
	if m.valueIdx == nil {
		return fmt.Errorf("atom: value index not enabled")
	}
	prefix := valuePrefix(typeName, attr)
	litKey := value.AppendKey(append([]byte(nil), prefix...), lit)
	var start, end []byte
	switch op {
	case "=":
		start = litKey
		end = prefixUpperBound(litKey)
	case "<", "<=":
		start = prefix
		// "<" and "<=" share an upper bound of litKey's cap; for "<=" the
		// equal keys must be included, so extend past them.
		if op == "<" {
			end = litKey
		} else {
			end = prefixUpperBound(litKey)
		}
	case ">", ">=":
		end = prefixUpperBound(prefix)
		if op == ">" {
			start = prefixUpperBound(litKey)
		} else {
			start = litKey
		}
	default:
		return fmt.Errorf("atom: value index cannot serve operator %q", op)
	}
	return m.valueIdx.ScanRange(start, end, func(k []byte, v uint64) (bool, error) {
		if !bytes.HasPrefix(k, prefix) {
			return false, nil
		}
		return fn(value.ID(v))
	})
}

// HasValueIndex reports whether the value index is maintained.
func (m *Manager) HasValueIndex() bool { return m.valueIdx != nil }

// rebuildValueIndex re-derives value entries during RebuildIndexes.
func (m *Manager) rebuildValueIndex(valueIdx *index.BPTree) error {
	var rebuildErr error
	err := m.primary.Scan(nil, func(k []byte, _ uint64) (bool, error) {
		id := value.ID(decodeU64BE(k))
		a, err := m.Load(id)
		if err != nil {
			rebuildErr = err
			return false, nil
		}
		for _, ad := range a.Attrs {
			for _, ver := range ad.Versions {
				if ver.Val.IsNull() {
					continue
				}
				if err := valueIdx.Insert(valueKey(a.Type, ad.Name, ver.Val, id), uint64(id)); err != nil {
					rebuildErr = err
					return false, nil
				}
			}
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	return rebuildErr
}
