package atom

import (
	"fmt"
	"sort"
	"time"

	"tcodm/internal/obs"
	"tcodm/internal/schema"
	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// State is an atom's materialized state at one (valid, transaction) time
// point: the answer to a time-slice of a single atom.
type State struct {
	ID       value.ID
	Type     string
	Alive    bool
	Vals     map[string]value.V
	Sets     map[string][]value.V
	BackRefs map[string][]value.ID
}

// SetIDs returns the set attribute's members as IDs (reference sets).
func (s *State) SetIDs(attr string) []value.ID {
	vs := s.Sets[attr]
	out := make([]value.ID, 0, len(vs))
	for _, v := range vs {
		out = append(out, v.AsID())
	}
	return out
}

// Now is the transaction-time argument meaning "the latest recorded state".
const Now = temporal.Forever - 1

// StateAt materializes atom id at valid time vt as recorded at transaction
// time tt (use Now for the latest state).
func (m *Manager) StateAt(id value.ID, vt, tt temporal.Instant) (*State, error) {
	return m.StateAtAcc(id, vt, tt, nil)
}

// StateAtAcc is StateAt with exact resource accounting: the pages and
// version-chain steps the materialization touches are charged to acc
// (nil = uncharged). The charge is a deterministic function of the atom's
// stored layout and (vt, tt) — never of buffer-pool state — so serial and
// parallel executions of the same query account identical totals.
func (m *Manager) StateAtAcc(id value.ID, vt, tt temporal.Instant, acc *obs.Resources) (*State, error) {
	switch m.opts.Strategy {
	case StrategyTuple:
		return m.tupleStateAt(id, vt, tt, acc)
	default:
		a, err := m.loadFor(id, vt, tt, acc)
		if err != nil {
			return nil, err
		}
		return stateFromAtom(a, vt, tt), nil
	}
}

// reconcile aligns a decoded atom with the current schema: attributes
// added by schema evolution after the record was written get empty
// histories (they read as Null until first updated).
func (m *Manager) reconcile(a *Atom) *Atom {
	t, ok := m.schema.AtomType(a.Type)
	if !ok {
		return a
	}
	if len(a.Attrs) == len(t.Attrs) {
		return a
	}
	for _, at := range t.Attrs {
		if a.Attr(at.Name) == nil {
			a.Attrs = append(a.Attrs, AttrData{Name: at.Name, Set: at.IsRef() && at.Card == schema.Many})
		}
	}
	return a
}

// Load materializes the complete atom with its full history. For the tuple
// strategy this reconstructs histories from the snapshot chain.
func (m *Manager) Load(id value.ID) (*Atom, error) {
	return m.LoadAcc(id, nil)
}

// LoadAcc is Load with exact resource accounting (see StateAtAcc). The
// result is full-fidelity: archived history is always merged back in (index
// rebuilds and molecule materialization depend on seeing everything).
func (m *Manager) LoadAcc(id value.ID, acc *obs.Resources) (*Atom, error) {
	if m.opts.Strategy == StrategyTuple {
		rid, err := m.homeRID(id)
		if err != nil {
			return nil, err
		}
		return m.tupleLoad(rid, acc)
	}
	a, _, _, err := m.loadHot(id, acc)
	if err != nil {
		return nil, err
	}
	if err := m.arcLoadInto(a, acc); err != nil {
		return nil, err
	}
	return a, nil
}

// loadHot materializes the complete hot-store atom (embedded/separated),
// reconciled against the schema but WITHOUT archived history. Maintenance
// paths (vacuum, compaction pre-scans) need exactly the hot state; query
// paths merge the archive afterwards when (and only when) the question
// reaches below the watermark.
func (m *Manager) loadHot(id value.ID, acc *obs.Resources) (*Atom, storage.RID, SepHeader, error) {
	rid, err := m.homeRID(id)
	if err != nil {
		return nil, storage.NilRID, SepHeader{}, err
	}
	switch m.opts.Strategy {
	case StrategyEmbedded:
		m.met.fullLoads.Inc()
		data, err := m.heap.FetchAcc(rid, acc)
		if err != nil {
			return nil, storage.NilRID, SepHeader{}, err
		}
		a, err := DecodeFull(data)
		if err != nil {
			return nil, storage.NilRID, SepHeader{}, err
		}
		return m.reconcile(a), rid, SepHeader{}, nil
	case StrategySeparated:
		m.met.fullLoads.Inc()
		a, hdr, err := m.loadSeparatedFull(rid, acc)
		if err != nil {
			return nil, storage.NilRID, SepHeader{}, err
		}
		return m.reconcile(a), rid, hdr, nil
	default:
		return nil, storage.NilRID, SepHeader{}, fmt.Errorf("atom: loadHot unsupported for strategy %s", m.opts.Strategy)
	}
}

// loadFor loads as much of the atom as answering a (vt, tt) question needs:
// for the separated strategy, current-only when the question is about the
// live open-ended present, the full chain otherwise.
//
// Accounting note: the separated fast-path probe re-reads the current
// record on the slow path via loadSeparatedFull, and both reads are
// charged — the charge counts logical record fetches, and both fetches
// really happen, identically in serial and parallel execution.
func (m *Manager) loadFor(id value.ID, vt, tt temporal.Instant, acc *obs.Resources) (*Atom, error) {
	rid, err := m.homeRID(id)
	if err != nil {
		return nil, err
	}
	switch m.opts.Strategy {
	case StrategyEmbedded:
		m.met.fastLoads.Inc()
		data, err := m.heap.FetchAcc(rid, acc)
		if err != nil {
			return nil, err
		}
		a, err := DecodeFull(data)
		if err != nil {
			return nil, err
		}
		a = m.reconcile(a)
		if arcNeeded(a.Arc, effectiveTT(tt)) {
			if err := m.arcLoadInto(a, acc); err != nil {
				return nil, err
			}
		}
		return a, nil
	case StrategySeparated:
		data, err := m.heap.FetchAcc(rid, acc)
		if err != nil {
			return nil, err
		}
		a, hdr, err := DecodeCurrent(data)
		if err != nil {
			return nil, err
		}
		a = m.reconcile(a)
		// The current record answers the question alone iff the question
		// is about the latest recorded state (tt == Now) at a valid time
		// every current-shaped version already covers: vt at or after the
		// latest current version start and at or after the watermark.
		if tt == Now && vt >= hdr.Watermark && coversCurrent(a, vt) {
			m.met.fastLoads.Inc()
			return a, nil
		}
		m.met.fullLoads.Inc()
		full, _, err := m.loadSeparatedFull(rid, acc)
		if err != nil {
			return nil, err
		}
		full = m.reconcile(full)
		if arcNeeded(full.Arc, effectiveTT(tt)) {
			if err := m.arcLoadInto(full, acc); err != nil {
				return nil, err
			}
		}
		return full, nil
	default:
		return nil, fmt.Errorf("atom: loadFor unsupported for strategy %s", m.opts.Strategy)
	}
}

// coversCurrent reports whether every current-shaped version in the record
// is already valid at vt, i.e. the state at vt equals the open-ended
// current state.
func coversCurrent(a *Atom, vt temporal.Instant) bool {
	for _, ad := range a.Attrs {
		for _, v := range ad.Versions {
			if v.Valid.From > vt {
				return false
			}
		}
	}
	for _, vs := range a.BackRefs {
		for _, v := range vs {
			if v.Valid.From > vt {
				return false
			}
		}
	}
	return true
}

// stateFromAtom filters a (fully or sufficiently) loaded atom down to one
// time point.
func stateFromAtom(a *Atom, vt, tt temporal.Instant) *State {
	s := &State{
		ID: a.ID, Type: a.Type,
		Alive: a.AliveAt(vt),
		Vals:  map[string]value.V{}, Sets: map[string][]value.V{}, BackRefs: map[string][]value.ID{},
	}
	for i := range a.Attrs {
		ad := &a.Attrs[i]
		if ad.Set {
			s.Sets[ad.Name] = sortVals(ad.SetAt(vt, tt))
			continue
		}
		s.Vals[ad.Name] = ad.ValueAt(vt, tt)
	}
	for k := range a.BackRefs {
		var ids []value.ID
		for _, v := range a.BackRefs[k] {
			if v.VisibleAt(vt, tt) {
				ids = append(ids, v.Val.AsID())
			}
		}
		if len(ids) > 0 {
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			s.BackRefs[k] = ids
		}
	}
	return s
}

func sortVals(vs []value.V) []value.V {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
	return vs
}

// History returns the valid-time history of an attribute as recorded at
// transaction time tt: visible versions ordered by valid start.
func (m *Manager) History(id value.ID, attr string, tt temporal.Instant) ([]Version, error) {
	return m.HistoryAcc(id, attr, tt, nil)
}

// HistoryAcc is History with exact resource accounting (see StateAtAcc).
// History at tt at or above the archive watermark is answered entirely from
// the hot store; only questions reaching below it pay for archive reads.
func (m *Manager) HistoryAcc(id value.ID, attr string, tt temporal.Instant, acc *obs.Resources) ([]Version, error) {
	if m.opts.Strategy == StrategyTuple {
		return m.tupleHistory(id, attr, tt, acc)
	}
	a, _, _, err := m.loadHot(id, acc)
	if err != nil {
		return nil, err
	}
	if arcNeeded(a.Arc, effectiveTT(tt)) {
		if err := m.arcLoadInto(a, acc); err != nil {
			return nil, err
		}
	}
	ad := a.Attr(attr)
	if ad == nil {
		return nil, fmt.Errorf("atom: %s has no attribute %q", a.Type, attr)
	}
	return ad.HistoryAt(effectiveTT(tt)), nil
}

// effectiveTT maps the Now sentinel onto an instant beyond every recorded
// transaction time.
func effectiveTT(tt temporal.Instant) temporal.Instant {
	if tt == Now {
		return temporal.Forever - 1
	}
	return tt
}

// Lifespan returns the atom's existence element.
func (m *Manager) Lifespan(id value.ID) (temporal.Element, error) {
	return m.LifespanAcc(id, nil)
}

// LifespanAcc is Lifespan with exact resource accounting (see StateAtAcc).
func (m *Manager) LifespanAcc(id value.ID, acc *obs.Resources) (temporal.Element, error) {
	switch m.opts.Strategy {
	case StrategyTuple:
		rid, err := m.homeRID(id)
		if err != nil {
			return nil, err
		}
		a, err := m.tupleLoad(rid, acc)
		if err != nil {
			return nil, err
		}
		return a.Lifespan, nil
	default:
		a, err := m.loadFor(id, Now-1, Now, acc)
		if err != nil {
			return nil, err
		}
		return a.Lifespan, nil
	}
}

// --- Tuple-strategy reads ---------------------------------------------------

// tupleStateAt walks the snapshot chain newest-first to the snapshot in
// force at (vt, tt).
func (m *Manager) tupleStateAt(id value.ID, vt, tt temporal.Instant, acc *obs.Resources) (*State, error) {
	rid, err := m.homeRID(id)
	if err != nil {
		return nil, err
	}
	ett := effectiveTT(tt)
	var first *Snapshot
	for rid.IsValid() {
		m.met.snapshotHops.Inc()
		acc.Add(obs.Resources{ChainSteps: 1})
		data, err := m.heap.FetchAcc(rid, acc)
		if err != nil {
			return nil, err
		}
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return nil, err
		}
		first = snap
		if snap.TransFrom <= ett && snap.ValidFrom <= vt {
			return m.reconcileState(stateFromSnapshot(snap, true)), nil
		}
		rid = snap.Prev
	}
	// The hot chain bottomed out; when the question reaches below the
	// archive watermark the walk continues through the archived prefix,
	// newest-first, exactly as it would have through the pre-archival chain.
	if first != nil && arcNeeded(first.Arc, ett) {
		arch, err := m.arcSnapChain(first.Arc, acc)
		if err != nil {
			return nil, err
		}
		for i := len(arch) - 1; i >= 0; i-- {
			s := arch[i]
			first = s
			if s.TransFrom <= ett && s.ValidFrom <= vt {
				return m.reconcileState(stateFromSnapshot(s, true)), nil
			}
		}
	}
	// vt precedes the atom's first version: it does not exist yet.
	if first == nil {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	return m.reconcileState(&State{ID: first.ID, Type: first.Type, Alive: false,
		Vals: map[string]value.V{}, Sets: map[string][]value.V{}, BackRefs: map[string][]value.ID{}}), nil
}

// reconcileState fills in schema attributes a stored snapshot predates.
func (m *Manager) reconcileState(st *State) *State {
	t, ok := m.schema.AtomType(st.Type)
	if !ok {
		return st
	}
	for _, at := range t.Attrs {
		if at.IsRef() && at.Card == schema.Many {
			if _, ok := st.Sets[at.Name]; !ok {
				st.Sets[at.Name] = nil
			}
			continue
		}
		if _, ok := st.Vals[at.Name]; !ok {
			st.Vals[at.Name] = value.Null
		}
	}
	return st
}

func stateFromSnapshot(s *Snapshot, alive bool) *State {
	st := &State{
		ID: s.ID, Type: s.Type, Alive: alive && !s.Deleted,
		Vals: map[string]value.V{}, Sets: map[string][]value.V{}, BackRefs: map[string][]value.ID{},
	}
	for k, v := range s.Vals {
		st.Vals[k] = v
	}
	for k, vs := range s.Sets {
		st.Sets[k] = sortVals(append([]value.V(nil), vs...))
	}
	for k, ids := range s.BackRefs {
		cp := append([]value.ID(nil), ids...)
		sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
		st.BackRefs[k] = cp
	}
	return st
}

// tupleChainMerged returns the snapshot chain oldest-first, prepending the
// archived prefix when needed: always when all is set (full-fidelity loads),
// otherwise only when a question at effective transaction time ett reaches
// below the archive watermark.
func (m *Manager) tupleChainMerged(rid storage.RID, ett temporal.Instant, all bool, acc *obs.Resources) ([]*Snapshot, error) {
	chain, err := m.tupleChain(rid, acc)
	if err != nil || len(chain) == 0 {
		return chain, err
	}
	p := chain[0].Arc
	if p.IsZero() || (!all && !arcNeeded(p, ett)) {
		return chain, nil
	}
	arch, err := m.arcSnapChain(p, acc)
	if err != nil {
		return nil, err
	}
	return append(arch, chain...), nil
}

// tupleLoad reconstructs a full atom (with step-function histories) from
// the snapshot chain, archived prefix included.
func (m *Manager) tupleLoad(rid storage.RID, acc *obs.Resources) (*Atom, error) {
	snaps, err := m.tupleChainMerged(rid, temporal.Beginning, true, acc)
	if err != nil {
		return nil, err
	}
	if len(snaps) == 0 {
		return nil, fmt.Errorf("atom: empty snapshot chain")
	}
	t, ok := m.schema.AtomType(snaps[0].Type)
	if !ok {
		return nil, fmt.Errorf("atom: unknown type %q in snapshot", snaps[0].Type)
	}
	a := NewAtom(snaps[0].ID, t)
	// snaps is oldest-first. Each snapshot's values hold from its
	// ValidFrom until the next snapshot's ValidFrom.
	for i, s := range snaps {
		valid := temporal.Open(s.ValidFrom)
		if i+1 < len(snaps) {
			valid.To = snaps[i+1].ValidFrom
		}
		if valid.IsEmpty() {
			continue
		}
		if s.Deleted {
			a.Lifespan = a.Lifespan.SubtractInterval(temporal.Open(s.ValidFrom))
			continue
		}
		a.Lifespan = a.Lifespan.Union(temporal.NewElement(valid))
		for name, v := range s.Vals {
			if v.IsNull() {
				continue
			}
			ad := a.Attr(name)
			if ad == nil {
				continue
			}
			ad.Versions = append(ad.Versions, Version{Valid: valid, Trans: temporal.Open(s.TransFrom), Val: v})
		}
		for name, vs := range s.Sets {
			ad := a.Attr(name)
			if ad == nil {
				continue
			}
			for _, v := range vs {
				ad.Versions = append(ad.Versions, Version{Valid: valid, Trans: temporal.Open(s.TransFrom), Val: v})
			}
		}
		for k, ids := range s.BackRefs {
			for _, idv := range ids {
				a.BackRefs[k] = append(a.BackRefs[k], Version{Valid: valid, Trans: temporal.Open(s.TransFrom), Val: value.Ref(idv)})
			}
		}
	}
	return a, nil
}

// tupleChain returns the snapshot chain oldest-first.
func (m *Manager) tupleChain(rid storage.RID, acc *obs.Resources) ([]*Snapshot, error) {
	start := time.Time{}
	if m.met.decodeNS != nil {
		start = time.Now()
	}
	var chain []*Snapshot
	for rid.IsValid() {
		m.met.snapshotHops.Inc()
		acc.Add(obs.Resources{ChainSteps: 1})
		data, err := m.heap.FetchAcc(rid, acc)
		if err != nil {
			return nil, err
		}
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return nil, err
		}
		chain = append(chain, snap)
		rid = snap.Prev
	}
	// Reverse to oldest-first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	m.met.chainDepth.Record(uint64(len(chain)))
	if !start.IsZero() {
		m.met.decodeNS.Observe(time.Since(start))
	}
	return chain, nil
}

// tupleHistory reconstructs the step-function history of one attribute from
// the snapshot chain, as recorded at transaction time tt.
func (m *Manager) tupleHistory(id value.ID, attr string, tt temporal.Instant, acc *obs.Resources) ([]Version, error) {
	rid, err := m.homeRID(id)
	if err != nil {
		return nil, err
	}
	ett := effectiveTT(tt)
	snaps, err := m.tupleChainMerged(rid, ett, false, acc)
	if err != nil {
		return nil, err
	}
	var out []Version
	for i, s := range snaps {
		if s.TransFrom > ett || s.Deleted {
			continue
		}
		valid := temporal.Open(s.ValidFrom)
		for j := i + 1; j < len(snaps); j++ {
			if snaps[j].TransFrom <= ett {
				valid.To = snaps[j].ValidFrom
				break
			}
		}
		if valid.IsEmpty() {
			continue
		}
		if v, ok := s.Vals[attr]; ok && !v.IsNull() {
			// Coalesce with the previous version when the value repeats.
			if n := len(out); n > 0 && out[n-1].Val.Equal(v) && out[n-1].Valid.To == valid.From {
				out[n-1].Valid.To = valid.To
				continue
			}
			out = append(out, Version{Valid: valid, Trans: temporal.Open(s.TransFrom), Val: v})
		}
		if vs, ok := s.Sets[attr]; ok {
			for _, v := range vs {
				out = append(out, Version{Valid: valid, Trans: temporal.Open(s.TransFrom), Val: v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Valid.From != out[j].Valid.From {
			return out[i].Valid.From < out[j].Valid.From
		}
		return out[i].Val.Compare(out[j].Val) < 0
	})
	return out, nil
}
