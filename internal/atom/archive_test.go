package atom

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"tcodm/internal/obs"
	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// testSink adapts a storage.Archive to the manager's sink interface the way
// the engine does, minus the WAL logging (these tests run unlogged).
type testSink struct{ a *storage.Archive }

func (s testSink) Append(p []byte) (uint64, error) {
	off, _, err := s.a.Append(p)
	return off, err
}

func (s testSink) ReadBlock(off uint64, acc *obs.Resources) ([]byte, error) {
	return s.a.ReadBlock(off, acc)
}

func newArchivedManager(t *testing.T, strat Strategy) *Manager {
	t.Helper()
	m := newManager(t, strat)
	m.SetArchive(testSink{a: storage.NewMemArchive()})
	return m
}

// buildRandomHistory drives a deterministic pseudo-random mutation sequence
// against m: attribute splices over open and bounded intervals, deletions,
// revivals, and many-reference edits, with a small value domain so
// compaction finds equal-valued runs to coalesce. Returns the atom ids and
// the highest transaction time used.
func buildRandomHistory(t *testing.T, m *Manager, rng *rand.Rand) ([]value.ID, temporal.Instant) {
	t.Helper()
	var ids []value.ID
	for i := 0; i < 3; i++ {
		id, err := m.Insert("Emp", map[string]value.V{
			"name":   value.String_(fmt.Sprintf("e%d", i)),
			"salary": value.Int(int64(1000 + i)),
		}, temporal.Instant(rng.Intn(10)), temporal.Instant(i+1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	proj, err := m.Insert("Proj", map[string]value.V{
		"title": value.String_("tiering"),
	}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	var maxTT temporal.Instant
	for step := 0; step < 60; step++ {
		tt := temporal.Instant(10 + step)
		maxTT = tt
		id := ids[rng.Intn(len(ids))]
		var iv temporal.Interval
		switch rng.Intn(3) {
		case 0:
			// Correction points drawn from a small fixed set: repeats at the
			// same instant are what make whole snapshots superseded under the
			// tuple strategy (its only archivable shape).
			iv = temporal.Open([]temporal.Instant{0, 10, 20, 35}[rng.Intn(4)])
		case 1:
			iv = temporal.Open(temporal.Instant(rng.Intn(40)))
		default:
			from := temporal.Instant(rng.Intn(40))
			iv = temporal.Interval{From: from, To: from + temporal.Instant(1+rng.Intn(10))}
		}
		from := iv.From
		var err error
		switch op := rng.Intn(12); {
		case op < 6:
			err = m.UpdateAttr(id, "salary", value.Int(int64(rng.Intn(4))), iv, tt)
		case op < 8:
			err = m.UpdateAttr(id, "name", value.String_(fmt.Sprintf("n%d", rng.Intn(3))), iv, tt)
		case op < 9:
			err = m.AddRef(proj, "members", id, iv, tt)
		case op < 10:
			err = m.RemoveRef(proj, "members", id, iv, tt)
		case op < 11:
			err = m.Delete(id, from, tt)
		default:
			err = m.Revive(id, from, tt)
		}
		// Logically impossible operations (reviving the never-deleted,
		// deleting outside the lifespan) may be rejected; the rejection is
		// itself deterministic under the seed, so skipping keeps every run
		// of this sequence identical.
		_ = err
	}
	return append(ids, proj), maxTT
}

// fingerprint renders every (vt, tt >= watermark) answer the manager gives:
// point states, attribute histories, and the full-fidelity load. This is
// the byte-identity the tiering pipeline must preserve.
func fingerprint(t *testing.T, m *Manager, ids []value.ID, wm, maxTT temporal.Instant) string {
	t.Helper()
	var sb strings.Builder
	tts := []temporal.Instant{wm, wm + 3, wm + 7, maxTT, maxTT + 5, Now}
	vts := []temporal.Instant{0, 3, 7, 12, 20, 30, 45, 100}
	for _, id := range ids {
		for _, tt := range tts {
			for _, vt := range vts {
				st, err := m.StateAt(id, vt, tt)
				if err != nil {
					t.Fatalf("StateAt(%v, %v, %v): %v", id, vt, tt, err)
				}
				fmt.Fprintf(&sb, "%v@%v,%v alive=%v vals=%v\n", id, vt, tt, st.Alive, st.Vals)
			}
			for _, attr := range []string{"salary", "name", "members"} {
				hist, err := m.History(id, attr, tt)
				if err != nil {
					continue // attr not on this type
				}
				fmt.Fprintf(&sb, "%v hist %s@%v = %v\n", id, attr, tt, hist)
			}
		}
	}
	return sb.String()
}

// TestArchiveEquivalenceProperty is the tiering pipeline's core contract:
// for every strategy and a family of random histories, every AS OF answer
// at tt >= watermark is byte-identical before compaction, after compaction,
// and after archival.
func TestArchiveEquivalenceProperty(t *testing.T) {
	for _, strat := range []Strategy{StrategyEmbedded, StrategySeparated, StrategyTuple} {
		t.Run(strat.String(), func(t *testing.T) {
			totalArchived := 0
			for seed := int64(1); seed <= 5; seed++ {
				m := newArchivedManager(t, strat)
				rng := rand.New(rand.NewSource(seed))
				ids, maxTT := buildRandomHistory(t, m, rng)
				wm := temporal.Instant(40)

				before := fingerprint(t, m, ids, wm, maxTT)
				merged, err := m.Compact(wm)
				if err != nil {
					t.Fatalf("seed %d: Compact: %v", seed, err)
				}
				if got := fingerprint(t, m, ids, wm, maxTT); got != before {
					t.Fatalf("seed %d: answers changed after compaction (%d merged):\n%s",
						seed, merged, firstDiff(before, got))
				}
				archived, err := m.ArchiveOlderThan(wm)
				if err != nil {
					t.Fatalf("seed %d: ArchiveOlderThan: %v", seed, err)
				}
				totalArchived += archived
				if got := fingerprint(t, m, ids, wm, maxTT); got != before {
					t.Fatalf("seed %d: answers changed after archival (%d archived):\n%s",
						seed, archived, firstDiff(before, got))
				}
				// A second run over the same watermark must be a no-op: the
				// cold versions are already out of the hot store.
				again, err := m.ArchiveOlderThan(wm)
				if err != nil {
					t.Fatalf("seed %d: re-archive: %v", seed, err)
				}
				if again != 0 {
					t.Errorf("seed %d: re-archive moved %d versions, want 0", seed, again)
				}
				// Full-fidelity loads must keep working after migration (the
				// archive is merged back transparently).
				for _, id := range ids {
					if _, err := m.Load(id); err != nil {
						t.Fatalf("seed %d: Load(%v) after archival: %v", seed, id, err)
					}
				}
			}
			if totalArchived == 0 {
				t.Errorf("no versions archived across any seed — the pipeline never engaged")
			}
		})
	}
}

// firstDiff returns the first differing line pair for a readable failure.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  before: %s\n  after:  %s", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(al), len(bl))
}

// TestArchiveVacuumInteraction: a vacuum bound at or past the archive
// watermark purges archived versions too (the pointer is dropped); below
// it, the pointer survives and deep reads still work.
func TestArchiveVacuumInteraction(t *testing.T) {
	for _, strat := range []Strategy{StrategyEmbedded, StrategySeparated, StrategyTuple} {
		t.Run(strat.String(), func(t *testing.T) {
			m := newArchivedManager(t, strat)
			id, err := m.Insert("Emp", map[string]value.V{
				"name": value.String_("k"), "salary": value.Int(0),
			}, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 20; i++ {
				if err := m.UpdateAttr(id, "salary", value.Int(int64(i)), temporal.Open(temporal.Instant(i)), temporal.Instant(10+i)); err != nil {
					t.Fatal(err)
				}
			}
			wm := temporal.Instant(20)
			if _, err := m.ArchiveOlderThan(wm); err != nil {
				t.Fatal(err)
			}
			deepBefore, err := m.StateAt(id, 5, 15)
			if err != nil {
				t.Fatal(err)
			}
			// Vacuum below the watermark: archived history must survive.
			if _, err := m.Vacuum(15); err != nil {
				t.Fatal(err)
			}
			deepAfter, err := m.StateAt(id, 5, 15)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(deepBefore.Vals) != fmt.Sprint(deepAfter.Vals) {
				t.Errorf("vacuum below watermark changed archived answer: %v -> %v",
					deepBefore.Vals, deepAfter.Vals)
			}
			// Vacuum at the watermark: archived versions are purged with the
			// hot dead ones; answers at tt >= wm are untouched.
			hot, err := m.StateAt(id, 30, Now)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Vacuum(wm); err != nil {
				t.Fatal(err)
			}
			hotAfter, err := m.StateAt(id, 30, Now)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(hot.Vals) != fmt.Sprint(hotAfter.Vals) {
				t.Errorf("vacuum at watermark changed hot answer: %v -> %v", hot.Vals, hotAfter.Vals)
			}
		})
	}
}
