package atom

import (
	"errors"
	"testing"

	"tcodm/internal/schema"
	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

func personnelSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddAtomType(schema.AtomType{
		Name: "Dept",
		Attrs: []schema.Attribute{
			{Name: "name", Kind: value.KindString, Required: true},
			{Name: "budget", Kind: value.KindInt, Temporal: true},
		},
	}))
	must(s.AddAtomType(schema.AtomType{
		Name: "Emp",
		Attrs: []schema.Attribute{
			{Name: "name", Kind: value.KindString, Required: true},
			{Name: "salary", Kind: value.KindInt, Temporal: true},
			{Name: "dept", Kind: value.KindID, Target: "Dept", Card: schema.One, Temporal: true},
		},
	}))
	must(s.AddAtomType(schema.AtomType{
		Name: "Proj",
		Attrs: []schema.Attribute{
			{Name: "title", Kind: value.KindString},
			{Name: "members", Kind: value.KindID, Target: "Emp", Card: schema.Many, Temporal: true},
		},
	}))
	s.Freeze()
	return s
}

func newManager(t *testing.T, strat Strategy) *Manager {
	t.Helper()
	dev := storage.NewMemDevice()
	pool := storage.NewBufferPool(dev, 256)
	if err := storage.InitMeta(pool); err != nil {
		t.Fatal(err)
	}
	heap := storage.NewHeap(pool, nil)
	m, err := NewManager(heap, pool, personnelSchema(t), Options{Strategy: strat, TimeIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newManagerOpts(t *testing.T, opts Options) *Manager {
	t.Helper()
	dev := storage.NewMemDevice()
	pool := storage.NewBufferPool(dev, 256)
	if err := storage.InitMeta(pool); err != nil {
		t.Fatal(err)
	}
	heap := storage.NewHeap(pool, nil)
	m, err := NewManager(heap, pool, personnelSchema(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func forAllStrategies(t *testing.T, fn func(t *testing.T, m *Manager)) {
	for _, s := range []Strategy{StrategyEmbedded, StrategySeparated, StrategyTuple} {
		t.Run(s.String(), func(t *testing.T) {
			fn(t, newManager(t, s))
		})
	}
}

func TestInsertAndCurrentState(t *testing.T) {
	forAllStrategies(t, func(t *testing.T, m *Manager) {
		id, err := m.Insert("Emp", map[string]value.V{
			"name":   value.String_("kaefer"),
			"salary": value.Int(4200),
		}, 10, 1)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.StateAt(id, 15, Now)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Alive {
			t.Error("atom not alive within lifespan")
		}
		if got := st.Vals["name"]; got.AsString() != "kaefer" {
			t.Errorf("name = %v", got)
		}
		if got := st.Vals["salary"]; got.AsInt() != 4200 {
			t.Errorf("salary = %v", got)
		}
		// Before creation: not alive.
		st, err = m.StateAt(id, 5, Now)
		if err != nil {
			t.Fatal(err)
		}
		if st.Alive {
			t.Error("atom alive before its lifespan")
		}
	})
}

func TestInsertValidation(t *testing.T) {
	m := newManager(t, StrategyEmbedded)
	if _, err := m.Insert("Ghost", nil, 0, 1); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := m.Insert("Emp", map[string]value.V{"name": value.Int(1)}, 0, 1); err == nil {
		t.Error("kind mismatch accepted")
	}
	if _, err := m.Insert("Emp", map[string]value.V{"salary": value.Int(1)}, 0, 1); err == nil {
		t.Error("missing required attribute accepted")
	}
	if _, err := m.Insert("Emp", map[string]value.V{"name": value.String_("x"), "bogus": value.Int(1)}, 0, 1); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := m.Insert("Proj", map[string]value.V{"title": value.String_("t"), "members": value.Ref(1)}, 0, 1); err == nil {
		t.Error("many-reference in insert accepted")
	}
}

func TestUpdateCreatesHistory(t *testing.T) {
	forAllStrategies(t, func(t *testing.T, m *Manager) {
		id, err := m.Insert("Emp", map[string]value.V{
			"name":   value.String_("schoening"),
			"salary": value.Int(1000),
		}, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i, raise := range []int64{2000, 3000, 4000} {
			from := temporal.Instant(10 * (i + 1))
			if err := m.UpdateAttr(id, "salary", value.Int(raise), temporal.Open(from), temporal.Instant(i+2)); err != nil {
				t.Fatal(err)
			}
		}
		// Time slices across the history.
		cases := []struct {
			vt   temporal.Instant
			want int64
		}{{5, 1000}, {10, 2000}, {15, 2000}, {25, 3000}, {30, 4000}, {1000, 4000}}
		for _, c := range cases {
			st, err := m.StateAt(id, c.vt, Now)
			if err != nil {
				t.Fatal(err)
			}
			if got := st.Vals["salary"].AsInt(); got != c.want {
				t.Errorf("salary at %d = %d, want %d", c.vt, got, c.want)
			}
		}
		// Full history.
		hist, err := m.History(id, "salary", Now)
		if err != nil {
			t.Fatal(err)
		}
		if len(hist) != 4 {
			t.Fatalf("history has %d versions, want 4: %v", len(hist), hist)
		}
		wantIv := []temporal.Interval{
			temporal.NewInterval(0, 10),
			temporal.NewInterval(10, 20),
			temporal.NewInterval(20, 30),
			temporal.Open(30),
		}
		for i, v := range hist {
			if !v.Valid.Equal(wantIv[i]) {
				t.Errorf("version %d valid = %v, want %v", i, v.Valid, wantIv[i])
			}
		}
	})
}

func TestRetroactiveUpdate(t *testing.T) {
	// Only embedded and separated support bounded-past corrections.
	for _, s := range []Strategy{StrategyEmbedded, StrategySeparated} {
		t.Run(s.String(), func(t *testing.T) {
			m := newManager(t, s)
			id, _ := m.Insert("Emp", map[string]value.V{
				"name": value.String_("x"), "salary": value.Int(100),
			}, 0, 1)
			if err := m.UpdateAttr(id, "salary", value.Int(200), temporal.Open(50), 2); err != nil {
				t.Fatal(err)
			}
			// Retroactive correction: salary was actually 150 during [20, 40).
			if err := m.UpdateAttr(id, "salary", value.Int(150), temporal.NewInterval(20, 40), 3); err != nil {
				t.Fatal(err)
			}
			cases := []struct {
				vt   temporal.Instant
				want int64
			}{{10, 100}, {20, 150}, {39, 150}, {40, 100}, {50, 200}}
			for _, c := range cases {
				st, err := m.StateAt(id, c.vt, Now)
				if err != nil {
					t.Fatal(err)
				}
				if got := st.Vals["salary"].AsInt(); got != c.want {
					t.Errorf("salary at %d = %d, want %d", c.vt, got, c.want)
				}
			}
			// As recorded BEFORE the correction (transaction time 2), the
			// old belief is preserved.
			st, err := m.StateAt(id, 30, 2)
			if err != nil {
				t.Fatal(err)
			}
			if got := st.Vals["salary"].AsInt(); got != 100 {
				t.Errorf("salary at vt=30 as of tt=2 = %d, want 100", got)
			}
			// Another retroactive change after the first (exercises the
			// separated full path via the watermark).
			if err := m.UpdateAttr(id, "salary", value.Int(125), temporal.NewInterval(25, 30), 4); err != nil {
				t.Fatal(err)
			}
			st, _ = m.StateAt(id, 27, Now)
			if got := st.Vals["salary"].AsInt(); got != 125 {
				t.Errorf("salary at 27 after second correction = %d", got)
			}
			st, _ = m.StateAt(id, 35, Now)
			if got := st.Vals["salary"].AsInt(); got != 150 {
				t.Errorf("salary at 35 after second correction = %d", got)
			}
		})
	}
}

func TestTupleRejectsRetroactive(t *testing.T) {
	m := newManager(t, StrategyTuple)
	id, _ := m.Insert("Emp", map[string]value.V{
		"name": value.String_("x"), "salary": value.Int(100),
	}, 0, 1)
	err := m.UpdateAttr(id, "salary", value.Int(150), temporal.NewInterval(20, 40), 2)
	if !errors.Is(err, ErrStrategy) {
		t.Errorf("bounded update error = %v, want ErrStrategy", err)
	}
	if err := m.UpdateAttr(id, "salary", value.Int(200), temporal.Open(50), 2); err != nil {
		t.Fatal(err)
	}
	err = m.UpdateAttr(id, "salary", value.Int(1), temporal.Open(10), 3)
	if !errors.Is(err, ErrStrategy) {
		t.Errorf("backdated open update error = %v, want ErrStrategy", err)
	}
}

func TestOneReferenceAndBackRefs(t *testing.T) {
	forAllStrategies(t, func(t *testing.T, m *Manager) {
		d1, _ := m.Insert("Dept", map[string]value.V{"name": value.String_("K1")}, 0, 1)
		d2, _ := m.Insert("Dept", map[string]value.V{"name": value.String_("K2")}, 0, 1)
		e, _ := m.Insert("Emp", map[string]value.V{
			"name": value.String_("w"), "dept": value.Ref(d1),
		}, 0, 2)

		// Move the employee to d2 at time 50.
		if err := m.UpdateAttr(e, "dept", value.Ref(d2), temporal.Open(50), 3); err != nil {
			t.Fatal(err)
		}
		st, err := m.StateAt(e, 10, Now)
		if err != nil {
			t.Fatal(err)
		}
		if got := st.Vals["dept"].AsID(); got != d1 {
			t.Errorf("dept at 10 = %v, want %v", got, d1)
		}
		st, _ = m.StateAt(e, 60, Now)
		if got := st.Vals["dept"].AsID(); got != d2 {
			t.Errorf("dept at 60 = %v, want %v", got, d2)
		}
		// Back-references: d1 employs e only before 50.
		d1st, err := m.StateAt(d1, 10, Now)
		if err != nil {
			t.Fatal(err)
		}
		if refs := d1st.BackRefs["Emp.dept"]; len(refs) != 1 || refs[0] != e {
			t.Errorf("d1 backrefs at 10 = %v", refs)
		}
		d1st, _ = m.StateAt(d1, 60, Now)
		if refs := d1st.BackRefs["Emp.dept"]; len(refs) != 0 {
			t.Errorf("d1 backrefs at 60 = %v, want none", refs)
		}
		d2st, _ := m.StateAt(d2, 60, Now)
		if refs := d2st.BackRefs["Emp.dept"]; len(refs) != 1 || refs[0] != e {
			t.Errorf("d2 backrefs at 60 = %v", refs)
		}
	})
}

func TestManyReferences(t *testing.T) {
	forAllStrategies(t, func(t *testing.T, m *Manager) {
		e1, _ := m.Insert("Emp", map[string]value.V{"name": value.String_("a")}, 0, 1)
		e2, _ := m.Insert("Emp", map[string]value.V{"name": value.String_("b")}, 0, 1)
		p, _ := m.Insert("Proj", map[string]value.V{"title": value.String_("prima")}, 0, 2)

		if err := m.AddRef(p, "members", e1, temporal.Open(10), 3); err != nil {
			t.Fatal(err)
		}
		if err := m.AddRef(p, "members", e2, temporal.Open(20), 4); err != nil {
			t.Fatal(err)
		}
		st, err := m.StateAt(p, 15, Now)
		if err != nil {
			t.Fatal(err)
		}
		if ids := st.SetIDs("members"); len(ids) != 1 || ids[0] != e1 {
			t.Errorf("members at 15 = %v", ids)
		}
		st, _ = m.StateAt(p, 25, Now)
		if ids := st.SetIDs("members"); len(ids) != 2 {
			t.Errorf("members at 25 = %v", ids)
		}
		// e1 leaves at 30.
		if err := m.RemoveRef(p, "members", e1, temporal.Open(30), 5); err != nil {
			t.Fatal(err)
		}
		st, _ = m.StateAt(p, 35, Now)
		if ids := st.SetIDs("members"); len(ids) != 1 || ids[0] != e2 {
			t.Errorf("members at 35 = %v", ids)
		}
		// Membership history of e1 via back-references.
		e1st, _ := m.StateAt(e1, 25, Now)
		if refs := e1st.BackRefs["Proj.members"]; len(refs) != 1 || refs[0] != p {
			t.Errorf("e1 backrefs at 25 = %v", refs)
		}
		e1st, _ = m.StateAt(e1, 35, Now)
		if len(e1st.BackRefs["Proj.members"]) != 0 {
			t.Errorf("e1 backrefs at 35 = %v, want none", e1st.BackRefs["Proj.members"])
		}
	})
}

func TestDeleteEndsLifespan(t *testing.T) {
	forAllStrategies(t, func(t *testing.T, m *Manager) {
		id, _ := m.Insert("Emp", map[string]value.V{"name": value.String_("done")}, 0, 1)
		if err := m.Delete(id, 100, 2); err != nil {
			t.Fatal(err)
		}
		st, err := m.StateAt(id, 50, Now)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Alive {
			t.Error("atom dead before deletion point")
		}
		st, _ = m.StateAt(id, 150, Now)
		if st.Alive {
			t.Error("atom alive after deletion")
		}
	})
}

func TestIDsAndScanType(t *testing.T) {
	forAllStrategies(t, func(t *testing.T, m *Manager) {
		var want []value.ID
		for i := 0; i < 10; i++ {
			id, err := m.Insert("Emp", map[string]value.V{"name": value.String_("e")}, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, id)
		}
		if _, err := m.Insert("Dept", map[string]value.V{"name": value.String_("d")}, 0, 1); err != nil {
			t.Fatal(err)
		}
		got, err := m.IDs("Emp")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("IDs[%d] = %v, want %v", i, got[i], want[i])
			}
		}
		n := 0
		err = m.ScanType("Emp", func(id value.ID, rid storage.RID) (bool, error) {
			n++
			return true, nil
		})
		if err != nil || n != 10 {
			t.Fatalf("ScanType visited %d, err %v", n, err)
		}
	})
}

func TestHistoryInvariants(t *testing.T) {
	forAllStrategies(t, func(t *testing.T, m *Manager) {
		id, _ := m.Insert("Emp", map[string]value.V{
			"name": value.String_("inv"), "salary": value.Int(1),
		}, 0, 1)
		for i := 1; i <= 20; i++ {
			if err := m.UpdateAttr(id, "salary", value.Int(int64(i*10)), temporal.Open(temporal.Instant(i*5)), temporal.Instant(i+1)); err != nil {
				t.Fatal(err)
			}
		}
		a, err := m.Load(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Attr("salary").CheckInvariant(Now); err != nil {
			t.Error(err)
		}
		// History is gapless and ordered.
		hist, _ := m.History(id, "salary", Now)
		for i := 1; i < len(hist); i++ {
			if hist[i-1].Valid.To != hist[i].Valid.From {
				t.Errorf("gap between versions %d and %d: %v -> %v", i-1, i, hist[i-1].Valid, hist[i].Valid)
			}
		}
		if len(hist) == 0 || !hist[len(hist)-1].Valid.IsOpenEnded() {
			t.Error("newest version should be open-ended")
		}
	})
}

func TestSeparatedFastPathStats(t *testing.T) {
	m := newManager(t, StrategySeparated)
	id, _ := m.Insert("Emp", map[string]value.V{
		"name": value.String_("fast"), "salary": value.Int(1),
	}, 0, 1)
	for i := 1; i <= 50; i++ {
		if err := m.UpdateAttr(id, "salary", value.Int(int64(i)), temporal.Open(temporal.Instant(i)), temporal.Instant(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	m.ResetStats()
	// Current-state reads must not touch history.
	for i := 0; i < 10; i++ {
		if _, err := m.StateAt(id, 1000, Now); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.FastLoads != 10 || st.FullLoads != 0 || st.SegmentReads != 0 {
		t.Errorf("current reads were not fast: %+v", st)
	}
	// An old time-slice must walk history.
	if _, err := m.StateAt(id, 5, Now); err != nil {
		t.Fatal(err)
	}
	st = m.Stats()
	if st.FullLoads != 1 || st.SegmentReads == 0 {
		t.Errorf("old slice did not walk history: %+v", st)
	}
}

func TestTimeIndexScan(t *testing.T) {
	forAllStrategies(t, func(t *testing.T, m *Manager) {
		// Atoms with salary versions starting at 0 and at i*10.
		var ids []value.ID
		for i := 0; i < 10; i++ {
			id, _ := m.Insert("Emp", map[string]value.V{
				"name": value.String_("t"), "salary": value.Int(1),
			}, 0, 1)
			ids = append(ids, id)
		}
		for i, id := range ids {
			if i == 0 {
				continue // ids[0] keeps only its initial version
			}
			if err := m.UpdateAttr(id, "salary", value.Int(2), temporal.Open(temporal.Instant(i*10)), 2); err != nil {
				t.Fatal(err)
			}
		}
		// Scan for atoms with a salary version starting before 25:
		// all have the initial version at 0, so all 10 qualify.
		seen := map[value.ID]bool{}
		err := m.TimeIndexScan("Emp", "salary", 25, func(id value.ID) (bool, error) {
			seen[id] = true
			return true, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != 10 {
			t.Errorf("time index scan found %d atoms, want 10", len(seen))
		}
	})
}

func TestRebuildIndexes(t *testing.T) {
	for _, s := range []Strategy{StrategyEmbedded, StrategySeparated, StrategyTuple} {
		t.Run(s.String(), func(t *testing.T) {
			dev := storage.NewMemDevice()
			pool := storage.NewBufferPool(dev, 256)
			if err := storage.InitMeta(pool); err != nil {
				t.Fatal(err)
			}
			heap := storage.NewHeap(pool, nil)
			m, err := NewManager(heap, pool, personnelSchema(t), Options{Strategy: s, TimeIndex: true})
			if err != nil {
				t.Fatal(err)
			}
			var ids []value.ID
			for i := 0; i < 20; i++ {
				id, err := m.Insert("Emp", map[string]value.V{
					"name": value.String_("r"), "salary": value.Int(int64(i)),
				}, 0, 1)
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
			for _, id := range ids[:10] {
				if err := m.UpdateAttr(id, "salary", value.Int(999), temporal.Open(10), 2); err != nil {
					t.Fatal(err)
				}
			}
			// Simulate index loss: rebuild from the heap.
			roots, err := m.RebuildIndexes(pool)
			if err != nil {
				t.Fatal(err)
			}
			if roots.NextID != uint64(ids[len(ids)-1])+1 {
				t.Errorf("rebuilt NextID = %d", roots.NextID)
			}
			for i, id := range ids {
				st, err := m.StateAt(id, 20, Now)
				if err != nil {
					t.Fatalf("atom %v lost after rebuild: %v", id, err)
				}
				want := int64(i)
				if i < 10 {
					want = 999
				}
				if got := st.Vals["salary"].AsInt(); got != want {
					t.Errorf("atom %v salary = %d, want %d", id, got, want)
				}
			}
			if got, _ := m.IDs("Emp"); len(got) != 20 {
				t.Errorf("type index rebuilt with %d entries", len(got))
			}
		})
	}
}

func TestParseStrategy(t *testing.T) {
	for _, s := range []Strategy{StrategyEmbedded, StrategySeparated, StrategyTuple} {
		got, ok := ParseStrategy(s.String())
		if !ok || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, ok)
		}
	}
	if _, ok := ParseStrategy("bogus"); ok {
		t.Error("bogus strategy parsed")
	}
}

func TestStateAtUnknownAtom(t *testing.T) {
	m := newManager(t, StrategyEmbedded)
	if _, err := m.StateAt(999, 0, Now); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}
