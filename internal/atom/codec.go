package atom

import (
	"encoding/binary"
	"fmt"
	"sort"

	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// Record wire formats. All atom-layer records begin with a one-byte kind
// tag so scans can classify heap records.
const (
	recFullAtom    byte = 0x10 // embedded strategy: atom with full history
	recCurrentAtom byte = 0x11 // separated strategy: current state + chain head
	recHistorySeg  byte = 0x12 // separated strategy: history segment
	recSnapshot    byte = 0x13 // tuple strategy: one whole-state snapshot
)

func appendVersion(dst []byte, v Version) []byte {
	dst = temporal.AppendInterval(dst, v.Valid)
	dst = temporal.AppendInterval(dst, v.Trans)
	return value.AppendRecord(dst, v.Val)
}

func decodeVersion(src []byte) (Version, int, error) {
	if len(src) < 2*temporal.IntervalWireSize {
		return Version{}, 0, fmt.Errorf("atom: short version encoding")
	}
	valid, err := temporal.DecodeInterval(src)
	if err != nil {
		return Version{}, 0, err
	}
	trans, err := temporal.DecodeInterval(src[temporal.IntervalWireSize:])
	if err != nil {
		return Version{}, 0, err
	}
	off := 2 * temporal.IntervalWireSize
	val, n, err := value.DecodeRecord(src[off:])
	if err != nil {
		return Version{}, 0, err
	}
	return Version{Valid: valid, Trans: trans, Val: val}, off + n, nil
}

func appendVersions(dst []byte, vs []Version) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = appendVersion(dst, v)
	}
	return dst
}

func decodeVersions(src []byte) ([]Version, int, error) {
	n, sz := binary.Uvarint(src)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("atom: corrupt version count")
	}
	off := sz
	out := make([]Version, 0, n)
	for i := uint64(0); i < n; i++ {
		v, vn, err := decodeVersion(src[off:])
		if err != nil {
			return nil, 0, err
		}
		out = append(out, v)
		off += vn
	}
	return out, off, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodeString(src []byte) (string, int, error) {
	n, sz := binary.Uvarint(src)
	if sz <= 0 || int(n) > len(src)-sz {
		return "", 0, fmt.Errorf("atom: corrupt string encoding")
	}
	return string(src[sz : sz+int(n)]), sz + int(n), nil
}

// encodeAtomBody serializes the atom's common fields plus the versions
// chosen by the filter (nil filter = all versions).
func encodeAtomBody(dst []byte, a *Atom, keep func(Version) bool) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(a.ID))
	dst = appendString(dst, a.Type)
	dst = temporal.AppendElement(dst, a.Lifespan)
	dst = binary.AppendUvarint(dst, uint64(len(a.Attrs)))
	for _, ad := range a.Attrs {
		dst = appendString(dst, ad.Name)
		var flags byte
		if ad.Set {
			flags |= 0x01
		}
		dst = append(dst, flags)
		dst = appendVersions(dst, filterVersions(ad.Versions, keep))
	}
	// Back-references, sorted by key for deterministic encodings.
	keys := make([]string, 0, len(a.BackRefs))
	for k := range a.BackRefs {
		if len(filterVersions(a.BackRefs[k], keep)) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = appendString(dst, k)
		dst = appendVersions(dst, filterVersions(a.BackRefs[k], keep))
	}
	return dst
}

func filterVersions(vs []Version, keep func(Version) bool) []Version {
	if keep == nil {
		return vs
	}
	var out []Version
	for _, v := range vs {
		if keep(v) {
			out = append(out, v)
		}
	}
	return out
}

func decodeAtomBody(src []byte) (*Atom, int, error) {
	if len(src) < 8 {
		return nil, 0, fmt.Errorf("atom: short atom body")
	}
	a := &Atom{ID: value.ID(binary.LittleEndian.Uint64(src)), BackRefs: map[string][]Version{}}
	off := 8
	typ, n, err := decodeString(src[off:])
	if err != nil {
		return nil, 0, err
	}
	a.Type = typ
	off += n
	ls, n, err := temporal.DecodeElement(src[off:])
	if err != nil {
		return nil, 0, err
	}
	a.Lifespan = ls
	off += n
	attrCount, sz := binary.Uvarint(src[off:])
	if sz <= 0 {
		return nil, 0, fmt.Errorf("atom: corrupt attribute count")
	}
	off += sz
	a.Attrs = make([]AttrData, attrCount)
	for i := range a.Attrs {
		name, n, err := decodeString(src[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
		if off >= len(src) {
			return nil, 0, fmt.Errorf("atom: truncated attribute flags")
		}
		flags := src[off]
		off++
		vs, n, err := decodeVersions(src[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
		a.Attrs[i] = AttrData{Name: name, Set: flags&0x01 != 0, Versions: vs}
	}
	brCount, sz := binary.Uvarint(src[off:])
	if sz <= 0 {
		return nil, 0, fmt.Errorf("atom: corrupt back-ref count")
	}
	off += sz
	for i := uint64(0); i < brCount; i++ {
		key, n, err := decodeString(src[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
		vs, n, err := decodeVersions(src[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
		a.BackRefs[key] = vs
	}
	return a, off, nil
}

// EncodeFull serializes an atom with its entire hot history (embedded
// strategy). A non-zero archive pointer rides as a fixed trailer; atoms
// without archived history encode byte-identically to the legacy format.
func EncodeFull(a *Atom) []byte {
	dst := []byte{recFullAtom}
	dst = encodeAtomBody(dst, a, nil)
	return appendArcTrailer(dst, a.Arc)
}

// DecodeFull deserializes an EncodeFull record.
func DecodeFull(src []byte) (*Atom, error) {
	if len(src) == 0 || src[0] != recFullAtom {
		return nil, fmt.Errorf("atom: not a full-atom record")
	}
	a, n, err := decodeAtomBody(src[1:])
	if err != nil {
		return nil, err
	}
	if a.Arc, err = decodeArcTrailer(src[1+n:]); err != nil {
		return nil, err
	}
	return a, nil
}

// SepHeader is the separated-strategy current record's header: where the
// history chain starts, how full its head segment is, and the watermark —
// the largest valid-time end among live-but-bounded versions that were
// migrated to history. Updates whose valid interval starts at or after the
// watermark cannot overlap any live version hiding in history, so they can
// run against the current record alone (the strategy's fast path).
type SepHeader struct {
	Head      storage.RID
	HeadCount uint32
	Watermark temporal.Instant
}

// EncodeCurrent serializes the current state of an atom (separated
// strategy): only current-shaped versions, plus the history chain header.
func EncodeCurrent(a *Atom, h SepHeader) []byte {
	dst := []byte{recCurrentAtom}
	dst = binary.LittleEndian.AppendUint64(dst, h.Head.Pack())
	dst = binary.LittleEndian.AppendUint32(dst, h.HeadCount)
	dst = temporal.AppendInstant(dst, h.Watermark)
	dst = encodeAtomBody(dst, a, Version.currentShaped)
	return appendArcTrailer(dst, a.Arc)
}

// DecodeCurrent deserializes an EncodeCurrent record.
func DecodeCurrent(src []byte) (*Atom, SepHeader, error) {
	if len(src) < 21 || src[0] != recCurrentAtom {
		return nil, SepHeader{}, fmt.Errorf("atom: not a current-atom record")
	}
	var h SepHeader
	h.Head = storage.UnpackRID(binary.LittleEndian.Uint64(src[1:]))
	h.HeadCount = binary.LittleEndian.Uint32(src[9:])
	wm, err := temporal.DecodeInstant(src[13:])
	if err != nil {
		return nil, SepHeader{}, err
	}
	h.Watermark = wm
	a, n, err := decodeAtomBody(src[21:])
	if err != nil {
		return nil, SepHeader{}, err
	}
	if a.Arc, err = decodeArcTrailer(src[21+n:]); err != nil {
		return nil, SepHeader{}, err
	}
	return a, h, nil
}

// HistoryEntry is one archived version inside a history segment: the
// version plus which attribute (or back-ref key) it belonged to.
type HistoryEntry struct {
	Attr    string // attribute name, or back-ref key when BackRef
	BackRef bool
	Ver     Version
}

// EncodeSegment serializes a history segment with a link to the previous
// (older) segment.
func EncodeSegment(prev storage.RID, entries []HistoryEntry) []byte {
	dst := []byte{recHistorySeg}
	dst = binary.LittleEndian.AppendUint64(dst, prev.Pack())
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = appendString(dst, e.Attr)
		var flags byte
		if e.BackRef {
			flags |= 0x01
		}
		dst = append(dst, flags)
		dst = appendVersion(dst, e.Ver)
	}
	return dst
}

// DecodeSegment deserializes an EncodeSegment record.
func DecodeSegment(src []byte) (prev storage.RID, entries []HistoryEntry, err error) {
	if len(src) < 9 || src[0] != recHistorySeg {
		return storage.NilRID, nil, fmt.Errorf("atom: not a history segment")
	}
	prev = storage.UnpackRID(binary.LittleEndian.Uint64(src[1:]))
	off := 9
	n, sz := binary.Uvarint(src[off:])
	if sz <= 0 {
		return storage.NilRID, nil, fmt.Errorf("atom: corrupt segment count")
	}
	off += sz
	entries = make([]HistoryEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		attr, an, err := decodeString(src[off:])
		if err != nil {
			return storage.NilRID, nil, err
		}
		off += an
		if off >= len(src) {
			return storage.NilRID, nil, fmt.Errorf("atom: truncated segment entry")
		}
		flags := src[off]
		off++
		v, vn, err := decodeVersion(src[off:])
		if err != nil {
			return storage.NilRID, nil, err
		}
		off += vn
		entries = append(entries, HistoryEntry{Attr: attr, BackRef: flags&0x01 != 0, Ver: v})
	}
	return prev, entries, nil
}

// Snapshot is one tuple-strategy whole-state record: the atom's complete
// attribute values as of ValidFrom, recorded at TransFrom, linked to the
// previous snapshot.
type Snapshot struct {
	ID        value.ID
	Type      string
	ValidFrom temporal.Instant
	TransFrom temporal.Instant
	Deleted   bool
	Prev      storage.RID
	// Vals holds the plain attribute values; Sets the set-attribute
	// memberships; BackRefs the inverse links — all as of ValidFrom.
	Vals     map[string]value.V
	Sets     map[string][]value.V
	BackRefs map[string][]value.ID
	// Arc points at the chain's archived prefix. It lives only on the
	// oldest (boundary) snapshot — the one with Prev == NilRID.
	Arc ArcPtr
}

// EncodeSnapshot serializes a tuple-strategy snapshot.
func EncodeSnapshot(s *Snapshot) []byte {
	dst := []byte{recSnapshot}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.ID))
	dst = appendString(dst, s.Type)
	dst = temporal.AppendInstant(dst, s.ValidFrom)
	dst = temporal.AppendInstant(dst, s.TransFrom)
	if s.Deleted {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.LittleEndian.AppendUint64(dst, s.Prev.Pack())

	keys := sortedKeys(s.Vals)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = appendString(dst, k)
		dst = value.AppendRecord(dst, s.Vals[k])
	}
	setKeys := make([]string, 0, len(s.Sets))
	for k := range s.Sets {
		setKeys = append(setKeys, k)
	}
	sort.Strings(setKeys)
	dst = binary.AppendUvarint(dst, uint64(len(setKeys)))
	for _, k := range setKeys {
		dst = appendString(dst, k)
		dst = binary.AppendUvarint(dst, uint64(len(s.Sets[k])))
		for _, v := range s.Sets[k] {
			dst = value.AppendRecord(dst, v)
		}
	}
	brKeys := make([]string, 0, len(s.BackRefs))
	for k := range s.BackRefs {
		brKeys = append(brKeys, k)
	}
	sort.Strings(brKeys)
	dst = binary.AppendUvarint(dst, uint64(len(brKeys)))
	for _, k := range brKeys {
		dst = appendString(dst, k)
		dst = binary.AppendUvarint(dst, uint64(len(s.BackRefs[k])))
		for _, id := range s.BackRefs[k] {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(id))
		}
	}
	return appendArcTrailer(dst, s.Arc)
}

func sortedKeys(m map[string]value.V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DecodeSnapshot deserializes an EncodeSnapshot record.
func DecodeSnapshot(src []byte) (*Snapshot, error) {
	if len(src) < 9 || src[0] != recSnapshot {
		return nil, fmt.Errorf("atom: not a snapshot record")
	}
	s := &Snapshot{
		ID:       value.ID(binary.LittleEndian.Uint64(src[1:])),
		Vals:     map[string]value.V{},
		Sets:     map[string][]value.V{},
		BackRefs: map[string][]value.ID{},
	}
	off := 9
	typ, n, err := decodeString(src[off:])
	if err != nil {
		return nil, err
	}
	s.Type = typ
	off += n
	vf, err := temporal.DecodeInstant(src[off:])
	if err != nil {
		return nil, err
	}
	s.ValidFrom = vf
	off += temporal.InstantWireSize
	tf, err := temporal.DecodeInstant(src[off:])
	if err != nil {
		return nil, err
	}
	s.TransFrom = tf
	off += temporal.InstantWireSize
	if off >= len(src) {
		return nil, fmt.Errorf("atom: truncated snapshot")
	}
	s.Deleted = src[off] == 1
	off++
	if off+8 > len(src) {
		return nil, fmt.Errorf("atom: truncated snapshot prev pointer")
	}
	s.Prev = storage.UnpackRID(binary.LittleEndian.Uint64(src[off:]))
	off += 8

	nv, sz := binary.Uvarint(src[off:])
	if sz <= 0 {
		return nil, fmt.Errorf("atom: corrupt snapshot value count")
	}
	off += sz
	for i := uint64(0); i < nv; i++ {
		k, n, err := decodeString(src[off:])
		if err != nil {
			return nil, err
		}
		off += n
		v, n, err := value.DecodeRecord(src[off:])
		if err != nil {
			return nil, err
		}
		off += n
		s.Vals[k] = v
	}
	ns, sz := binary.Uvarint(src[off:])
	if sz <= 0 {
		return nil, fmt.Errorf("atom: corrupt snapshot set count")
	}
	off += sz
	for i := uint64(0); i < ns; i++ {
		k, n, err := decodeString(src[off:])
		if err != nil {
			return nil, err
		}
		off += n
		cnt, sz := binary.Uvarint(src[off:])
		if sz <= 0 {
			return nil, fmt.Errorf("atom: corrupt snapshot set size")
		}
		off += sz
		vals := make([]value.V, 0, cnt)
		for j := uint64(0); j < cnt; j++ {
			v, n, err := value.DecodeRecord(src[off:])
			if err != nil {
				return nil, err
			}
			off += n
			vals = append(vals, v)
		}
		s.Sets[k] = vals
	}
	nb, sz := binary.Uvarint(src[off:])
	if sz <= 0 {
		return nil, fmt.Errorf("atom: corrupt snapshot backref count")
	}
	off += sz
	for i := uint64(0); i < nb; i++ {
		k, n, err := decodeString(src[off:])
		if err != nil {
			return nil, err
		}
		off += n
		cnt, sz := binary.Uvarint(src[off:])
		if sz <= 0 {
			return nil, fmt.Errorf("atom: corrupt snapshot backref size")
		}
		off += sz
		ids := make([]value.ID, 0, cnt)
		for j := uint64(0); j < cnt; j++ {
			if off+8 > len(src) {
				return nil, fmt.Errorf("atom: truncated snapshot backref")
			}
			ids = append(ids, value.ID(binary.LittleEndian.Uint64(src[off:])))
			off += 8
		}
		s.BackRefs[k] = ids
	}
	if s.Arc, err = decodeArcTrailer(src[off:]); err != nil {
		return nil, err
	}
	return s, nil
}

// RecordKind classifies an atom-layer heap record by its tag byte.
func RecordKind(data []byte) byte {
	if len(data) == 0 {
		return 0
	}
	return data[0]
}
