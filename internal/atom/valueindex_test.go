package atom

import (
	"bytes"
	"testing"

	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

func TestPrefixUpperBound(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte
	}{
		{[]byte{0x01, 0x02}, []byte{0x01, 0x03}},
		{[]byte{0x01, 0xFF}, []byte{0x02}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte{}, nil},
	}
	for _, c := range cases {
		got := prefixUpperBound(c.in)
		if !bytes.Equal(got, c.want) {
			t.Errorf("prefixUpperBound(%x) = %x, want %x", c.in, got, c.want)
		}
	}
}

func TestValueIndexScanOperators(t *testing.T) {
	dev := newManager(t, StrategySeparated) // wrong: need ValueIndex on
	_ = dev
	m := newValueIndexedManager(t)
	// Atoms with salaries 10, 20, 30.
	var ids []value.ID
	for _, s := range []int64{10, 20, 30} {
		id, err := m.Insert("Emp", map[string]value.V{
			"name": value.String_("v"), "salary": value.Int(s),
		}, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	collect := func(op string, lit value.V) []value.ID {
		var out []value.ID
		err := m.ValueIndexScan("Emp", "salary", op, lit, func(id value.ID) (bool, error) {
			out = append(out, id)
			return true, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if got := collect("=", value.Int(20)); len(got) != 1 || got[0] != ids[1] {
		t.Errorf("= 20 -> %v", got)
	}
	if got := collect("<", value.Int(20)); len(got) != 1 || got[0] != ids[0] {
		t.Errorf("< 20 -> %v", got)
	}
	if got := collect("<=", value.Int(20)); len(got) != 2 {
		t.Errorf("<= 20 -> %v", got)
	}
	if got := collect(">", value.Int(20)); len(got) != 1 || got[0] != ids[2] {
		t.Errorf("> 20 -> %v", got)
	}
	if got := collect(">=", value.Int(20)); len(got) != 2 {
		t.Errorf(">= 20 -> %v", got)
	}
	if err := m.ValueIndexScan("Emp", "salary", "!=", value.Int(1), func(value.ID) (bool, error) { return true, nil }); err == nil {
		t.Error("!= accepted by value index")
	}
	// Disabled index errors.
	m2 := newManager(t, StrategySeparated)
	if err := m2.ValueIndexScan("Emp", "salary", "=", value.Int(1), func(value.ID) (bool, error) { return true, nil }); err == nil {
		t.Error("disabled value index scanned")
	}
	_ = temporal.Instant(0)
}

func newValueIndexedManager(t *testing.T) *Manager {
	t.Helper()
	m := newManagerOpts(t, Options{Strategy: StrategySeparated, ValueIndex: true})
	return m
}
