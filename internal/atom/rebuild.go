package atom

import (
	"tcodm/internal/index"
	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// RebuildIndexes reconstructs the primary, type, and (if enabled) time
// indexes from a heap scan. Indexes are derived, unlogged state: the engine
// calls this after WAL replay following an unclean shutdown. Returns the
// fresh index roots (the old index pages are abandoned; their space is
// reclaimed only by offline compaction, a documented trade-off).
func (m *Manager) RebuildIndexes(pool *storage.BufferPool) (Roots, error) {
	primary, err := index.New(pool)
	if err != nil {
		return Roots{}, err
	}
	typeIdx, err := index.New(pool)
	if err != nil {
		return Roots{}, err
	}
	var timeIdx, valueIdx *index.BPTree
	if m.opts.TimeIndex {
		timeIdx, err = index.New(pool)
		if err != nil {
			return Roots{}, err
		}
	}
	if m.opts.ValueIndex {
		valueIdx, err = index.New(pool)
		if err != nil {
			return Roots{}, err
		}
	}

	type newest struct {
		rid   storage.RID
		trans temporal.Instant
	}
	snapshots := map[value.ID]newest{}
	snapshotTypes := map[value.ID]string{}
	var maxID value.ID

	// Transaction times are derived state too: the persisted clock predates
	// the crash, so the largest transaction instant bound to any recovered
	// version is the true low-water mark for the engine clock.
	var maxTrans temporal.Instant
	noteTrans := func(iv temporal.Interval) {
		if iv.From > maxTrans {
			maxTrans = iv.From
		}
		if iv.To != temporal.Forever && iv.To > maxTrans {
			maxTrans = iv.To
		}
	}
	noteAtomTrans := func(a *Atom) {
		for i := range a.Attrs {
			for _, v := range a.Attrs[i].Versions {
				noteTrans(v.Trans)
			}
		}
		for _, vs := range a.BackRefs {
			for _, v := range vs {
				noteTrans(v.Trans)
			}
		}
	}

	err = m.heap.Scan(func(rid storage.RID, data []byte) (bool, error) {
		switch RecordKind(data) {
		case recFullAtom:
			a, err := DecodeFull(data)
			if err != nil {
				return false, err
			}
			if err := primary.Insert(primaryKey(a.ID), rid.Pack()); err != nil {
				return false, err
			}
			if err := typeIdx.Insert(typeKey(a.Type, a.ID), rid.Pack()); err != nil {
				return false, err
			}
			if a.ID > maxID {
				maxID = a.ID
			}
			noteAtomTrans(a)
		case recCurrentAtom:
			a, _, err := DecodeCurrent(data)
			if err != nil {
				return false, err
			}
			if err := primary.Insert(primaryKey(a.ID), rid.Pack()); err != nil {
				return false, err
			}
			if err := typeIdx.Insert(typeKey(a.Type, a.ID), rid.Pack()); err != nil {
				return false, err
			}
			if a.ID > maxID {
				maxID = a.ID
			}
			noteAtomTrans(a)
		case recSnapshot:
			s, err := DecodeSnapshot(data)
			if err != nil {
				return false, err
			}
			cur, seen := snapshots[s.ID]
			if !seen || s.TransFrom > cur.trans {
				snapshots[s.ID] = newest{rid: rid, trans: s.TransFrom}
				snapshotTypes[s.ID] = s.Type
			}
			if s.ID > maxID {
				maxID = s.ID
			}
			if s.TransFrom > maxTrans {
				maxTrans = s.TransFrom
			}
		case recHistorySeg:
			// Reached through current records; nothing to index.
		default:
			// Not an atom-layer record (e.g. the engine's catalog record):
			// nothing to index.
		}
		return true, nil
	})
	if err != nil {
		return Roots{}, err
	}
	for id, n := range snapshots {
		if err := primary.Insert(primaryKey(id), n.rid.Pack()); err != nil {
			return Roots{}, err
		}
		if err := typeIdx.Insert(typeKey(snapshotTypes[id], id), n.rid.Pack()); err != nil {
			return Roots{}, err
		}
	}
	m.primary = primary
	m.typeIdx = typeIdx
	if maxID >= value.ID(m.nextID) {
		m.nextID = uint64(maxID) + 1
	}
	m.maxTrans = maxTrans
	if valueIdx != nil {
		if err := m.rebuildValueIndex(valueIdx); err != nil {
			return Roots{}, err
		}
		m.valueIdx = valueIdx
	}
	if timeIdx != nil {
		m.timeIdx = timeIdx
		// Re-derive version start entries from full loads.
		var rebuildErr error
		err := primary.Scan(nil, func(k []byte, v uint64) (bool, error) {
			id := value.ID(decodeU64BE(k))
			a, err := m.Load(id)
			if err != nil {
				rebuildErr = err
				return false, nil
			}
			for _, ad := range a.Attrs {
				for _, ver := range ad.Versions {
					if err := timeIdx.Insert(timeKey(a.Type, ad.Name, ver.Valid.From, id), uint64(id)); err != nil {
						rebuildErr = err
						return false, nil
					}
				}
			}
			return true, nil
		})
		if err != nil {
			return Roots{}, err
		}
		if rebuildErr != nil {
			return Roots{}, rebuildErr
		}
	}
	return m.Roots(), nil
}

func decodeU64BE(b []byte) uint64 {
	var v uint64
	for _, c := range b[:8] {
		v = v<<8 | uint64(c)
	}
	return v
}
