// History tiering: compaction coalesces adjacent equal-valued
// transaction-closed versions, and archival migrates versions no query at
// tt >= watermark can see out of the heap into the cold archive. Archived
// history stays fully queryable — reads past the watermark chase the
// per-atom archive pointer through append-only chunks — while the hot store
// stops paying for it.
package atom

import (
	"encoding/binary"
	"fmt"
	"sort"

	"tcodm/internal/obs"
	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// ArcPtr is the per-atom archive pointer left in the hot record after
// archival: where the newest archived chunk lives and the transaction-time
// watermark below which queries need it. Off == 0 means no archived history
// (offset 0 is the archive file's magic header, never a block).
type ArcPtr struct {
	Off uint64           // archive block offset of the newest chunk
	WM  temporal.Instant // queries at effective tt < WM must merge the archive
}

// IsZero reports whether the pointer references no archived history.
func (p ArcPtr) IsZero() bool { return p.Off == 0 }

// arcTrailerSize is the encoded size of a non-zero ArcPtr: it rides as a
// fixed-size trailer after the record body, so records without archived
// history stay byte-identical to the pre-tiering format.
const arcTrailerSize = 8 + temporal.InstantWireSize

func appendArcTrailer(dst []byte, p ArcPtr) []byte {
	if p.Off == 0 {
		return dst
	}
	dst = binary.LittleEndian.AppendUint64(dst, p.Off)
	return temporal.AppendInstant(dst, p.WM)
}

// decodeArcTrailer parses the bytes left after a record body: none means no
// archived history; exactly one trailer means an ArcPtr; anything else is
// corruption.
func decodeArcTrailer(src []byte) (ArcPtr, error) {
	if len(src) == 0 {
		return ArcPtr{}, nil
	}
	if len(src) != arcTrailerSize {
		return ArcPtr{}, fmt.Errorf("atom: %d stray bytes after record body", len(src))
	}
	off := binary.LittleEndian.Uint64(src)
	wm, err := temporal.DecodeInstant(src[8:])
	if err != nil {
		return ArcPtr{}, err
	}
	if off == 0 {
		return ArcPtr{}, fmt.Errorf("atom: archive trailer with nil offset")
	}
	return ArcPtr{Off: off, WM: wm}, nil
}

// ArchiveSink is where the manager migrates cold versions. The engine's
// implementation appends to the archive file AND logs the frame to the WAL,
// which is what makes a crash mid-migration recoverable.
type ArchiveSink interface {
	// Append stores a chunk payload and returns its block offset.
	Append(payload []byte) (off uint64, err error)
	// ReadBlock returns the chunk payload at off, charging acc.
	ReadBlock(off uint64, acc *obs.Resources) ([]byte, error)
}

// SetArchive attaches the cold-archive sink. Must be set before reads that
// may cross the watermark and before ArchiveOlderThan.
func (m *Manager) SetArchive(sink ArchiveSink) { m.arc = sink }

// --- Archive chunk codecs --------------------------------------------------
//
// A chunk is one archive block's payload. Chunks chain newest-first through
// prevOff (0 terminates), continuing the same walk order reads use on the
// hot chain, so a deep-history scan is: hot records, then sequential chunk
// reads.

const (
	arcAtomChunk byte = 0xA1 // embedded/separated: versions tagged by attribute
	arcSnapChunk byte = 0xA2 // tuple: whole snapshots, newest-first
)

func encodeArcAtomChunk(prevOff uint64, entries []HistoryEntry) []byte {
	dst := []byte{arcAtomChunk}
	dst = binary.LittleEndian.AppendUint64(dst, prevOff)
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = appendString(dst, e.Attr)
		var flags byte
		if e.BackRef {
			flags |= 0x01
		}
		dst = append(dst, flags)
		dst = appendVersion(dst, e.Ver)
	}
	return dst
}

func decodeArcAtomChunk(src []byte) (prevOff uint64, entries []HistoryEntry, err error) {
	if len(src) < 9 || src[0] != arcAtomChunk {
		return 0, nil, fmt.Errorf("atom: not an atom archive chunk")
	}
	prevOff = binary.LittleEndian.Uint64(src[1:])
	off := 9
	n, sz := binary.Uvarint(src[off:])
	if sz <= 0 {
		return 0, nil, fmt.Errorf("atom: corrupt archive chunk count")
	}
	off += sz
	entries = make([]HistoryEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		attr, an, err := decodeString(src[off:])
		if err != nil {
			return 0, nil, err
		}
		off += an
		if off >= len(src) {
			return 0, nil, fmt.Errorf("atom: truncated archive chunk entry")
		}
		flags := src[off]
		off++
		v, vn, err := decodeVersion(src[off:])
		if err != nil {
			return 0, nil, err
		}
		off += vn
		entries = append(entries, HistoryEntry{Attr: attr, BackRef: flags&0x01 != 0, Ver: v})
	}
	return prevOff, entries, nil
}

// encodeArcSnapChunk stores whole snapshots newest-first, each
// length-prefixed. Prev RIDs and Arc pointers are cleared before encoding:
// the heap records they referenced are gone, and chunk chaining replaces
// them.
func encodeArcSnapChunk(prevOff uint64, snaps []*Snapshot) []byte {
	dst := []byte{arcSnapChunk}
	dst = binary.LittleEndian.AppendUint64(dst, prevOff)
	dst = binary.AppendUvarint(dst, uint64(len(snaps)))
	for _, s := range snaps {
		cp := *s
		cp.Prev = storage.NilRID
		cp.Arc = ArcPtr{}
		body := EncodeSnapshot(&cp)
		dst = binary.AppendUvarint(dst, uint64(len(body)))
		dst = append(dst, body...)
	}
	return dst
}

func decodeArcSnapChunk(src []byte) (prevOff uint64, snaps []*Snapshot, err error) {
	if len(src) < 9 || src[0] != arcSnapChunk {
		return 0, nil, fmt.Errorf("atom: not a snapshot archive chunk")
	}
	prevOff = binary.LittleEndian.Uint64(src[1:])
	off := 9
	n, sz := binary.Uvarint(src[off:])
	if sz <= 0 {
		return 0, nil, fmt.Errorf("atom: corrupt archive chunk count")
	}
	off += sz
	snaps = make([]*Snapshot, 0, n)
	for i := uint64(0); i < n; i++ {
		bl, sz := binary.Uvarint(src[off:])
		if sz <= 0 || int(bl) > len(src)-off-sz {
			return 0, nil, fmt.Errorf("atom: corrupt archived snapshot length")
		}
		off += sz
		s, err := DecodeSnapshot(src[off : off+int(bl)])
		if err != nil {
			return 0, nil, err
		}
		off += int(bl)
		snaps = append(snaps, s)
	}
	return prevOff, snaps, nil
}

// --- Archive read paths ------------------------------------------------------

// arcLoadInto merges every archived version of the atom back into its
// in-memory form (embedded/separated strategies). Chunk reads charge one
// archive block plus one chain step each — an archived chunk costs what a
// history segment does, minus the random heap I/O.
func (m *Manager) arcLoadInto(a *Atom, acc *obs.Resources) error {
	off := a.Arc.Off
	if off == 0 {
		return nil
	}
	if m.arc == nil {
		return fmt.Errorf("atom: record references archived history but no archive is attached")
	}
	for off != 0 {
		payload, err := m.arc.ReadBlock(off, acc)
		if err != nil {
			return err
		}
		prev, entries, err := decodeArcAtomChunk(payload)
		if err != nil {
			return err
		}
		acc.Add(obs.Resources{ChainSteps: 1})
		m.met.segmentReads.Inc()
		for _, e := range entries {
			if e.BackRef {
				a.BackRefs[e.Attr] = append(a.BackRefs[e.Attr], e.Ver)
				continue
			}
			ad := a.Attr(e.Attr)
			if ad == nil {
				return fmt.Errorf("atom: archived entry for unknown attribute %q", e.Attr)
			}
			ad.Versions = append(ad.Versions, e.Ver)
		}
		off = prev
	}
	return nil
}

// arcNeeded reports whether a question at effective transaction time ett
// must merge the atom's archive: only when archived history exists and the
// question reaches below the watermark. Everything at or above the
// watermark is answered by the hot store alone — the tiering perf win.
func arcNeeded(p ArcPtr, ett temporal.Instant) bool {
	return p.Off != 0 && ett < p.WM
}

// arcSnapChain reads the archived snapshot chain (tuple strategy),
// oldest-first, ready to prepend to the hot chain.
func (m *Manager) arcSnapChain(p ArcPtr, acc *obs.Resources) ([]*Snapshot, error) {
	if p.Off == 0 {
		return nil, nil
	}
	if m.arc == nil {
		return nil, fmt.Errorf("atom: record references archived history but no archive is attached")
	}
	var newestFirst []*Snapshot
	for off := p.Off; off != 0; {
		payload, err := m.arc.ReadBlock(off, acc)
		if err != nil {
			return nil, err
		}
		prev, snaps, err := decodeArcSnapChunk(payload)
		if err != nil {
			return nil, err
		}
		for range snaps {
			m.met.snapshotHops.Inc()
			acc.Add(obs.Resources{ChainSteps: 1})
		}
		newestFirst = append(newestFirst, snaps...)
		off = prev
	}
	for i, j := 0, len(newestFirst)-1; i < j; i, j = i+1, j-1 {
		newestFirst[i], newestFirst[j] = newestFirst[j], newestFirst[i]
	}
	return newestFirst, nil
}

// --- Compaction ---------------------------------------------------------------

// deadBefore reports whether no query at tt >= beforeTT can see the version.
func deadBefore(v Version, beforeTT temporal.Instant) bool {
	return !v.Trans.IsOpenEnded() && v.Trans.To <= beforeTT
}

// Compact coalesces adjacent equal-valued transaction-closed versions in
// every atom's history: two dead versions with the same value, abutting
// valid intervals and the same transaction end collapse into one covering
// both. Queries at tt >= beforeTT answer exactly as before (the merged
// versions are invisible there either way); ASOF queries between the two
// original record times may lose the not-yet-recorded distinction, the same
// contract Vacuum has. The tuple strategy already coalesces at read time
// (whole-state snapshots store no per-attribute steps to merge), so it
// reports zero.
//
// Returns the number of versions eliminated by merging.
func (m *Manager) Compact(beforeTT temporal.Instant) (int, error) {
	if m.opts.Strategy == StrategyTuple {
		return 0, nil
	}
	merged := 0
	for _, typeName := range m.schema.AtomTypeNames() {
		ids, err := m.IDs(typeName)
		if err != nil {
			return merged, err
		}
		for _, id := range ids {
			n, err := m.compactAtom(id, beforeTT)
			if err != nil {
				return merged, err
			}
			merged += n
		}
	}
	return merged, nil
}

func (m *Manager) compactAtom(id value.ID, beforeTT temporal.Instant) (int, error) {
	// Pre-scan on a throwaway load: atoms with nothing to merge are skipped
	// without a rewrite (no dirty pages, no WAL bytes).
	probe, _, _, err := m.loadHot(id, nil)
	if err != nil {
		return 0, err
	}
	if coalesceAtom(probe, beforeTT) == 0 {
		return 0, nil
	}
	merged := 0
	err = m.mutate(id, temporal.Open(temporal.Beginning), func(a *Atom) ([]Version, error) {
		merged = coalesceAtom(a, beforeTT)
		return nil, nil
	}, beforeTT)
	return merged, err
}

// coalesceAtom merges adjacent dead versions across all attributes and
// back-references, returning how many versions were eliminated.
func coalesceAtom(a *Atom, beforeTT temporal.Instant) int {
	merged := 0
	for i := range a.Attrs {
		vs, n := coalesceDead(a.Attrs[i].Versions, beforeTT)
		a.Attrs[i].Versions = vs
		merged += n
	}
	for k, vs := range a.BackRefs {
		out, n := coalesceDead(vs, beforeTT)
		a.BackRefs[k] = out
		merged += n
	}
	return merged
}

// coalesceDead merges runs of dead versions with equal values, abutting
// valid intervals and a common transaction end. The merged version's
// transaction start is the latest of the run (conservative: it never claims
// a value was recorded before it was). Live versions and versions dead
// after beforeTT are untouched. Reordering is safe: plain attributes have
// at most one visible version per (vt, tt) and set/back-ref reads sort.
func coalesceDead(vs []Version, beforeTT temporal.Instant) ([]Version, int) {
	var dead, rest []Version
	for _, v := range vs {
		if deadBefore(v, beforeTT) {
			dead = append(dead, v)
		} else {
			rest = append(rest, v)
		}
	}
	if len(dead) < 2 {
		return vs, 0
	}
	sort.SliceStable(dead, func(i, j int) bool {
		if c := dead[i].Val.Compare(dead[j].Val); c != 0 {
			return c < 0
		}
		if dead[i].Trans.To != dead[j].Trans.To {
			return dead[i].Trans.To < dead[j].Trans.To
		}
		return dead[i].Valid.From < dead[j].Valid.From
	})
	out := dead[:1:1]
	merged := 0
	for _, v := range dead[1:] {
		last := &out[len(out)-1]
		if last.Val.Equal(v.Val) && last.Trans.To == v.Trans.To && last.Valid.To == v.Valid.From {
			last.Valid.To = v.Valid.To
			if v.Trans.From > last.Trans.From {
				last.Trans.From = v.Trans.From
			}
			merged++
			continue
		}
		out = append(out, v)
	}
	if merged == 0 {
		return vs, 0
	}
	return append(out, rest...), merged
}

// --- Archival -------------------------------------------------------------------

// ArchiveOlderThan migrates every version that stopped being part of the
// recorded state before beforeTT out of the heap into the archive, leaving
// an ArcPtr in each touched atom's hot record. Queries at tt >= beforeTT
// never read the archive; older ASOF and history questions transparently
// chain into it. Returns the number of versions (tuple: snapshot records)
// migrated.
func (m *Manager) ArchiveOlderThan(beforeTT temporal.Instant) (int, error) {
	if m.arc == nil {
		return 0, fmt.Errorf("atom: ArchiveOlderThan without an attached archive")
	}
	total := 0
	for _, typeName := range m.schema.AtomTypeNames() {
		ids, err := m.IDs(typeName)
		if err != nil {
			return total, err
		}
		for _, id := range ids {
			var n int
			switch m.opts.Strategy {
			case StrategyEmbedded:
				n, err = m.archiveEmbedded(id, beforeTT)
			case StrategySeparated:
				n, err = m.archiveSeparated(id, beforeTT)
			case StrategyTuple:
				n, err = m.archiveTuple(id, beforeTT)
			default:
				err = fmt.Errorf("atom: unknown strategy %d", m.opts.Strategy)
			}
			if err != nil {
				return total, err
			}
			total += n
		}
	}
	return total, nil
}

// splitDead strips every dead-before-beforeTT version out of the atom and
// returns them as history entries (attribute order, then back-ref keys
// sorted — deterministic for replication digests).
func splitDead(a *Atom, beforeTT temporal.Instant) []HistoryEntry {
	var entries []HistoryEntry
	for i := range a.Attrs {
		ad := &a.Attrs[i]
		var kept []Version
		for _, v := range ad.Versions {
			if deadBefore(v, beforeTT) {
				entries = append(entries, HistoryEntry{Attr: ad.Name, Ver: v})
				continue
			}
			kept = append(kept, v)
		}
		ad.Versions = kept
	}
	keys := make([]string, 0, len(a.BackRefs))
	for k := range a.BackRefs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var kept []Version
		for _, v := range a.BackRefs[k] {
			if deadBefore(v, beforeTT) {
				entries = append(entries, HistoryEntry{Attr: k, BackRef: true, Ver: v})
				continue
			}
			kept = append(kept, v)
		}
		if len(kept) == 0 {
			delete(a.BackRefs, k)
		} else {
			a.BackRefs[k] = kept
		}
	}
	return entries
}

// bumpArc chains a new chunk in front of the atom's archived history.
func bumpArc(p ArcPtr, off uint64, beforeTT temporal.Instant) ArcPtr {
	wm := beforeTT
	if p.WM > wm {
		wm = p.WM
	}
	return ArcPtr{Off: off, WM: wm}
}

func (m *Manager) archiveEmbedded(id value.ID, beforeTT temporal.Instant) (int, error) {
	rid, err := m.homeRID(id)
	if err != nil {
		return 0, err
	}
	data, err := m.heap.Fetch(rid)
	if err != nil {
		return 0, err
	}
	a, err := DecodeFull(data)
	if err != nil {
		return 0, err
	}
	a = m.reconcile(a)
	entries := splitDead(a, beforeTT)
	if len(entries) == 0 {
		return 0, nil
	}
	off, err := m.arc.Append(encodeArcAtomChunk(a.Arc.Off, entries))
	if err != nil {
		return 0, err
	}
	a.Arc = bumpArc(a.Arc, off, beforeTT)
	if err := m.heap.Update(rid, EncodeFull(a)); err != nil {
		return 0, err
	}
	m.met.archivedVersions.Add(uint64(len(entries)))
	return len(entries), nil
}

func (m *Manager) archiveSeparated(id value.ID, beforeTT temporal.Instant) (int, error) {
	rid, err := m.homeRID(id)
	if err != nil {
		return 0, err
	}
	a, hdr, err := m.loadSeparatedFull(rid, nil)
	if err != nil {
		return 0, err
	}
	a = m.reconcile(a)
	entries := splitDead(a, beforeTT)
	if len(entries) == 0 {
		return 0, nil
	}
	off, err := m.arc.Append(encodeArcAtomChunk(a.Arc.Off, entries))
	if err != nil {
		return 0, err
	}
	a.Arc = bumpArc(a.Arc, off, beforeTT)
	if err := m.separatedRewrite(rid, a, hdr.Head); err != nil {
		return 0, err
	}
	m.met.archivedVersions.Add(uint64(len(entries)))
	return len(entries), nil
}

// archiveTuple migrates the maximal prefix of superseded snapshots — those
// no query at tt >= beforeTT can reach (a newer snapshot with the same or
// earlier ValidFrom was recorded before beforeTT) — into one chunk, stored
// newest-first so archive reads continue the hot walk's order. The new
// oldest hot snapshot becomes the boundary: Prev cut to nil, ArcPtr set.
// Its heap record is updated in place, so the newest RID (and with it every
// index entry) is untouched.
func (m *Manager) archiveTuple(id value.ID, beforeTT temporal.Instant) (int, error) {
	rid, err := m.homeRID(id)
	if err != nil {
		return 0, err
	}
	chain, err := m.tupleChain(rid, nil) // oldest-first, hot records only
	if err != nil {
		return 0, err
	}
	if len(chain) < 2 {
		return 0, nil
	}
	keep := make([]bool, len(chain))
	keep[len(chain)-1] = true
	for i := 0; i+1 < len(chain); i++ {
		next := chain[i+1]
		keep[i] = !(next.ValidFrom <= chain[i].ValidFrom && next.TransFrom <= beforeTT)
	}
	cut := 0
	for cut < len(chain) && !keep[cut] {
		cut++
	}
	if cut == 0 {
		return 0, nil
	}
	oldRIDs, err := m.tupleChainRIDs(rid) // oldest-first
	if err != nil {
		return 0, err
	}
	newestFirst := make([]*Snapshot, 0, cut)
	for i := cut - 1; i >= 0; i-- {
		newestFirst = append(newestFirst, chain[i])
	}
	off, err := m.arc.Append(encodeArcSnapChunk(chain[0].Arc.Off, newestFirst))
	if err != nil {
		return 0, err
	}
	boundary := *chain[cut]
	boundary.Prev = storage.NilRID
	boundary.Arc = bumpArc(chain[0].Arc, off, beforeTT)
	if err := m.heap.Update(oldRIDs[cut], EncodeSnapshot(&boundary)); err != nil {
		return 0, err
	}
	for i := 0; i < cut; i++ {
		if err := m.heap.Delete(oldRIDs[i]); err != nil {
			return 0, err
		}
	}
	m.met.archivedVersions.Add(uint64(cut))
	return cut, nil
}
