package atom

import (
	"fmt"
	"time"

	"tcodm/internal/obs"
	"tcodm/internal/schema"
	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// UpdateAttr records a new value for a plain (scalar or One-reference)
// attribute over the valid interval iv at transaction time tt. Use an
// open-ended interval (temporal.Open(from)) for the common "from now on"
// update; bounded intervals express retroactive or proactive corrections.
func (m *Manager) UpdateAttr(id value.ID, attr string, v value.V, iv temporal.Interval, tt temporal.Instant) error {
	t, at, err := m.resolveAttr(id, attr)
	if err != nil {
		return err
	}
	if at.IsRef() && at.Card == schema.Many {
		return fmt.Errorf("atom: %s.%s is a many-reference; use AddRef/RemoveRef", t.Name, attr)
	}
	if err := checkKind(*at, v); err != nil {
		return err
	}
	if at.Required && v.IsNull() {
		return fmt.Errorf("atom: required attribute %s.%s cannot be set to null", t.Name, attr)
	}

	// Track reference retargeting so back-references stay consistent.
	var oldTargets []refSpan
	apply := func(a *Atom) ([]Version, error) {
		ad := a.Attr(attr)
		if at.IsRef() {
			for _, old := range ad.Versions {
				if old.Live() && old.Valid.Overlaps(iv) && !old.Val.IsNull() {
					oldTargets = append(oldTargets, refSpan{target: old.Val.AsID(), span: old.Valid.Intersect(iv)})
				}
			}
		}
		return ad.spliceVersion(iv, v, tt)
	}
	if err := m.mutate(id, iv, apply, tt); err != nil {
		return err
	}
	if m.timeIdx != nil {
		if err := m.idxPut(m.timeIdx, timeKey(t.Name, attr, iv.From, id), uint64(id)); err != nil {
			return err
		}
	}
	if err := m.noteValue(t.Name, attr, v, id); err != nil {
		return err
	}
	if at.IsRef() {
		for _, old := range oldTargets {
			if err := m.trimBackRefOn(old.target, t.Name, attr, id, old.span, tt); err != nil {
				return err
			}
		}
		if !v.IsNull() {
			if err := m.addBackRefTo(v.AsID(), t.Name, attr, id, iv, tt); err != nil {
				return err
			}
		}
	}
	return nil
}

type refSpan struct {
	target value.ID
	span   temporal.Interval
}

// AddRef attaches target to the Many-reference attr of atom id over iv.
func (m *Manager) AddRef(id value.ID, attr string, target value.ID, iv temporal.Interval, tt temporal.Instant) error {
	t, at, err := m.resolveAttr(id, attr)
	if err != nil {
		return err
	}
	if !at.IsRef() || at.Card != schema.Many {
		return fmt.Errorf("atom: %s.%s is not a many-reference", t.Name, attr)
	}
	if err := m.mutate(id, iv, func(a *Atom) ([]Version, error) {
		return a.Attr(attr).addSetMember(iv, value.Ref(target), tt)
	}, tt); err != nil {
		return err
	}
	if m.timeIdx != nil {
		if err := m.idxPut(m.timeIdx, timeKey(t.Name, attr, iv.From, id), uint64(id)); err != nil {
			return err
		}
	}
	return m.addBackRefTo(target, t.Name, attr, id, iv, tt)
}

// RemoveRef detaches target from the Many-reference attr of atom id over iv.
func (m *Manager) RemoveRef(id value.ID, attr string, target value.ID, iv temporal.Interval, tt temporal.Instant) error {
	t, at, err := m.resolveAttr(id, attr)
	if err != nil {
		return err
	}
	if !at.IsRef() || at.Card != schema.Many {
		return fmt.Errorf("atom: %s.%s is not a many-reference", t.Name, attr)
	}
	if err := m.mutate(id, iv, func(a *Atom) ([]Version, error) {
		return a.Attr(attr).removeSetMember(iv, value.Ref(target), tt)
	}, tt); err != nil {
		return err
	}
	return m.trimBackRefOn(target, t.Name, attr, id, iv, tt)
}

// Delete ends the atom's existence from valid time `from` on (a valid-time
// deletion: history before `from` remains queryable).
func (m *Manager) Delete(id value.ID, from, tt temporal.Instant) error {
	if m.opts.Strategy == StrategyTuple {
		return m.tupleDelete(id, from, tt)
	}
	return m.mutate(id, temporal.Open(from), func(a *Atom) ([]Version, error) {
		a.Lifespan = a.Lifespan.SubtractInterval(temporal.Open(from))
		return nil, nil
	}, tt)
}

// Revive resumes the atom's existence from valid time `from` on (the
// lifespan becomes a multi-interval temporal element when the atom was
// deleted earlier). Attribute histories are untouched: open-ended versions
// become visible again over the revived span.
func (m *Manager) Revive(id value.ID, from, tt temporal.Instant) error {
	if m.opts.Strategy == StrategyTuple {
		return m.tupleRevive(id, from, tt)
	}
	return m.mutate(id, temporal.Open(from), func(a *Atom) ([]Version, error) {
		a.Lifespan = a.Lifespan.Union(temporal.NewElement(temporal.Open(from)))
		return nil, nil
	}, tt)
}

// resolveAttr fetches the schema type and attribute for an atom.
func (m *Manager) resolveAttr(id value.ID, attr string) (*schema.AtomType, *schema.Attribute, error) {
	typeName, err := m.typeOf(id)
	if err != nil {
		return nil, nil, err
	}
	t, ok := m.schema.AtomType(typeName)
	if !ok {
		return nil, nil, fmt.Errorf("atom: stored atom %v has unknown type %q", id, typeName)
	}
	at, ok := t.Attr(attr)
	if !ok {
		return nil, nil, fmt.Errorf("atom: %s has no attribute %q", typeName, attr)
	}
	return t, &at, nil
}

// typeOf reads just the atom's type name.
func (m *Manager) typeOf(id value.ID) (string, error) {
	rid, err := m.homeRID(id)
	if err != nil {
		return "", err
	}
	data, err := m.heap.Fetch(rid)
	if err != nil {
		return "", err
	}
	switch RecordKind(data) {
	case recFullAtom:
		a, err := DecodeFull(data)
		if err != nil {
			return "", err
		}
		return a.Type, nil
	case recCurrentAtom:
		a, _, err := DecodeCurrent(data)
		if err != nil {
			return "", err
		}
		return a.Type, nil
	case recSnapshot:
		s, err := DecodeSnapshot(data)
		if err != nil {
			return "", err
		}
		return s.Type, nil
	default:
		return "", fmt.Errorf("atom: record of atom %v has unknown kind %#x", id, RecordKind(data))
	}
}

// mutate loads the atom appropriately for the strategy, applies the
// in-memory change, and persists it. span is the valid interval the change
// touches; strategies use it to pick their fast path (separated) or reject
// inexpressible changes (tuple).
func (m *Manager) mutate(id value.ID, span temporal.Interval, apply func(*Atom) ([]Version, error), tt temporal.Instant) error {
	switch m.opts.Strategy {
	case StrategyEmbedded:
		return m.embeddedMutate(id, apply)
	case StrategySeparated:
		return m.separatedMutate(id, span, apply, tt)
	case StrategyTuple:
		return m.tupleMutate(id, span, apply, tt)
	default:
		return fmt.Errorf("atom: unknown strategy %d", m.opts.Strategy)
	}
}

// --- Embedded strategy ----------------------------------------------------

func (m *Manager) embeddedMutate(id value.ID, apply func(*Atom) ([]Version, error)) error {
	rid, err := m.homeRID(id)
	if err != nil {
		return err
	}
	data, err := m.heap.Fetch(rid)
	if err != nil {
		return err
	}
	a, err := DecodeFull(data)
	if err != nil {
		return err
	}
	a = m.reconcile(a)
	if _, err := apply(a); err != nil {
		return err
	}
	return m.heap.Update(rid, EncodeFull(a))
}

// --- Separated strategy -----------------------------------------------------

// separatedMutate applies a change under the separated mapping. When the
// change starts at or after the watermark it can only touch current-shaped
// versions, so it runs against the current record alone (the fast path);
// otherwise the full history is materialized, re-split, and rewritten.
func (m *Manager) separatedMutate(id value.ID, span temporal.Interval, apply func(*Atom) ([]Version, error), tt temporal.Instant) error {
	rid, err := m.homeRID(id)
	if err != nil {
		return err
	}
	data, err := m.heap.Fetch(rid)
	if err != nil {
		return err
	}
	cur, hdr, err := DecodeCurrent(data)
	if err != nil {
		return err
	}
	cur = m.reconcile(cur)
	if span.From < hdr.Watermark {
		return m.separatedMutateFull(id, rid, apply, tt)
	}
	// Fast path: apply against the current record. Versions the change
	// displaces that are no longer current-shaped migrate to history.
	if _, err := apply(cur); err != nil {
		return err
	}
	var migrate []HistoryEntry
	for i := range cur.Attrs {
		ad := &cur.Attrs[i]
		var keep []Version
		for _, v := range ad.Versions {
			if v.currentShaped() {
				keep = append(keep, v)
				continue
			}
			migrate = append(migrate, HistoryEntry{Attr: ad.Name, Ver: v})
			if v.Live() && v.Valid.To != temporal.Forever && v.Valid.To > hdr.Watermark {
				hdr.Watermark = v.Valid.To
			}
		}
		ad.Versions = keep
	}
	for k, vs := range cur.BackRefs {
		var keep []Version
		for _, v := range vs {
			if v.currentShaped() {
				keep = append(keep, v)
				continue
			}
			migrate = append(migrate, HistoryEntry{Attr: k, BackRef: true, Ver: v})
			if v.Live() && v.Valid.To != temporal.Forever && v.Valid.To > hdr.Watermark {
				hdr.Watermark = v.Valid.To
			}
		}
		if len(keep) == 0 {
			delete(cur.BackRefs, k)
		} else {
			cur.BackRefs[k] = keep
		}
	}
	if len(migrate) > 0 {
		newHdr, err := m.appendHistory(hdr, migrate)
		if err != nil {
			return err
		}
		hdr = newHdr
	}
	return m.heap.Update(rid, EncodeCurrent(cur, hdr))
}

// separatedMutateFull handles retroactive changes: materialize everything,
// apply, then rebuild the current record and the whole history chain.
func (m *Manager) separatedMutateFull(id value.ID, rid storage.RID, apply func(*Atom) ([]Version, error), tt temporal.Instant) error {
	m.met.fullLoads.Inc()
	a, hdr, err := m.loadSeparatedFull(rid, nil)
	if err != nil {
		return err
	}
	a = m.reconcile(a)
	if _, err := apply(a); err != nil {
		return err
	}
	return m.separatedRewrite(rid, a, hdr.Head)
}

// separatedRewrite persists a fully-materialized atom under the separated
// mapping: re-split into current-shaped versions and history entries, free
// the old chain rooted at oldHead, write a fresh one in segment-sized
// pieces, and update the current record. Shared by retroactive mutations
// and the archival cut-over.
func (m *Manager) separatedRewrite(rid storage.RID, a *Atom, oldHead storage.RID) error {
	var hist []HistoryEntry
	watermark := temporal.Beginning
	for i := range a.Attrs {
		ad := &a.Attrs[i]
		var keep []Version
		for _, v := range ad.Versions {
			if v.currentShaped() {
				keep = append(keep, v)
				continue
			}
			hist = append(hist, HistoryEntry{Attr: ad.Name, Ver: v})
			if v.Live() && v.Valid.To != temporal.Forever && v.Valid.To > watermark {
				watermark = v.Valid.To
			}
		}
		ad.Versions = keep
	}
	for k, vs := range a.BackRefs {
		var keep []Version
		for _, v := range vs {
			if v.currentShaped() {
				keep = append(keep, v)
				continue
			}
			hist = append(hist, HistoryEntry{Attr: k, BackRef: true, Ver: v})
			if v.Live() && v.Valid.To != temporal.Forever && v.Valid.To > watermark {
				watermark = v.Valid.To
			}
		}
		if len(keep) == 0 {
			delete(a.BackRefs, k)
		} else {
			a.BackRefs[k] = keep
		}
	}
	// Free the old chain, then write a fresh one in segment-sized pieces.
	for seg := oldHead; seg.IsValid(); {
		data, err := m.heap.Fetch(seg)
		if err != nil {
			return err
		}
		prev, _, err := DecodeSegment(data)
		if err != nil {
			return err
		}
		if err := m.heap.Delete(seg); err != nil {
			return err
		}
		seg = prev
	}
	newHdr := SepHeader{Head: storage.NilRID, Watermark: watermark}
	for off := 0; off < len(hist); off += m.opts.SegmentCap {
		end := off + m.opts.SegmentCap
		if end > len(hist) {
			end = len(hist)
		}
		segRID, err := m.heap.Insert(EncodeSegment(newHdr.Head, hist[off:end]))
		if err != nil {
			return err
		}
		newHdr.Head = segRID
		newHdr.HeadCount = uint32(end - off)
	}
	return m.heap.Update(rid, EncodeCurrent(a, newHdr))
}

// appendHistory archives entries onto the chain, filling the head segment
// before starting a new one.
func (m *Manager) appendHistory(hdr SepHeader, entries []HistoryEntry) (SepHeader, error) {
	if hdr.Head.IsValid() && int(hdr.HeadCount)+len(entries) <= m.opts.SegmentCap {
		data, err := m.heap.Fetch(hdr.Head)
		if err != nil {
			return hdr, err
		}
		prev, existing, err := DecodeSegment(data)
		if err != nil {
			return hdr, err
		}
		existing = append(existing, entries...)
		if err := m.heap.Update(hdr.Head, EncodeSegment(prev, existing)); err != nil {
			return hdr, err
		}
		hdr.HeadCount = uint32(len(existing))
		return hdr, nil
	}
	rid, err := m.heap.Insert(EncodeSegment(hdr.Head, entries))
	if err != nil {
		return hdr, err
	}
	hdr.Head = rid
	hdr.HeadCount = uint32(len(entries))
	return hdr, nil
}

// loadSeparatedFull materializes the complete atom: current record plus the
// whole history chain. Segment hops count as version-chain steps in acc.
func (m *Manager) loadSeparatedFull(rid storage.RID, acc *obs.Resources) (*Atom, SepHeader, error) {
	start := time.Time{}
	if m.met.decodeNS != nil {
		start = time.Now()
	}
	data, err := m.heap.FetchAcc(rid, acc)
	if err != nil {
		return nil, SepHeader{}, err
	}
	a, hdr, err := DecodeCurrent(data)
	if err != nil {
		return nil, SepHeader{}, err
	}
	depth := uint64(0)
	seg := hdr.Head
	for seg.IsValid() {
		m.met.segmentReads.Inc()
		acc.Add(obs.Resources{ChainSteps: 1})
		depth++
		data, err := m.heap.FetchAcc(seg, acc)
		if err != nil {
			return nil, SepHeader{}, err
		}
		prev, entries, err := DecodeSegment(data)
		if err != nil {
			return nil, SepHeader{}, err
		}
		for _, e := range entries {
			if e.BackRef {
				a.BackRefs[e.Attr] = append(a.BackRefs[e.Attr], e.Ver)
				continue
			}
			ad := a.Attr(e.Attr)
			if ad == nil {
				return nil, SepHeader{}, fmt.Errorf("atom: history entry for unknown attribute %q", e.Attr)
			}
			ad.Versions = append(ad.Versions, e.Ver)
		}
		seg = prev
	}
	m.met.chainDepth.Record(depth)
	if !start.IsZero() {
		m.met.decodeNS.Observe(time.Since(start))
	}
	return a, hdr, nil
}

// --- Tuple strategy --------------------------------------------------------

// tupleMutate applies a change under tuple versioning: materialize the
// newest state, apply, and chain a complete new snapshot. Only forward,
// open-ended changes are expressible — the strategy's defining limitation.
func (m *Manager) tupleMutate(id value.ID, span temporal.Interval, apply func(*Atom) ([]Version, error), tt temporal.Instant) error {
	rid, err := m.homeRID(id)
	if err != nil {
		return err
	}
	data, err := m.heap.Fetch(rid)
	if err != nil {
		return err
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		return err
	}
	if snap.Deleted {
		return fmt.Errorf("atom: %v is deleted", id)
	}
	if span.To != temporal.Forever || span.From < snap.ValidFrom {
		return ErrStrategy
	}
	t, ok := m.schema.AtomType(snap.Type)
	if !ok {
		return fmt.Errorf("atom: stored atom %v has unknown type %q", id, snap.Type)
	}
	// Rehydrate the newest state as a transient atom so the shared splice
	// logic applies, then project the post-change state into a snapshot.
	a := snapshotToAtom(snap, t)
	if _, err := apply(a); err != nil {
		return err
	}
	next := atomToSnapshot(a, span.From, tt)
	next.Prev = rid
	newRID, err := m.heap.Insert(EncodeSnapshot(next))
	if err != nil {
		return err
	}
	if err := m.idxPut(m.primary, primaryKey(id), newRID.Pack()); err != nil {
		return err
	}
	return m.idxPut(m.typeIdx, typeKey(snap.Type, id), newRID.Pack())
}

func (m *Manager) tupleDelete(id value.ID, from, tt temporal.Instant) error {
	rid, err := m.homeRID(id)
	if err != nil {
		return err
	}
	data, err := m.heap.Fetch(rid)
	if err != nil {
		return err
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		return err
	}
	next := *snap
	next.ValidFrom = from
	next.TransFrom = tt
	next.Deleted = true
	next.Prev = rid
	newRID, err := m.heap.Insert(EncodeSnapshot(&next))
	if err != nil {
		return err
	}
	if err := m.idxPut(m.primary, primaryKey(id), newRID.Pack()); err != nil {
		return err
	}
	return m.idxPut(m.typeIdx, typeKey(snap.Type, id), newRID.Pack())
}

func (m *Manager) tupleRevive(id value.ID, from, tt temporal.Instant) error {
	rid, err := m.homeRID(id)
	if err != nil {
		return err
	}
	data, err := m.heap.Fetch(rid)
	if err != nil {
		return err
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		return err
	}
	if !snap.Deleted {
		return fmt.Errorf("atom: %v is not deleted", id)
	}
	next := *snap
	next.ValidFrom = from
	next.TransFrom = tt
	next.Deleted = false
	next.Prev = rid
	newRID, err := m.heap.Insert(EncodeSnapshot(&next))
	if err != nil {
		return err
	}
	if err := m.idxPut(m.primary, primaryKey(id), newRID.Pack()); err != nil {
		return err
	}
	return m.idxPut(m.typeIdx, typeKey(snap.Type, id), newRID.Pack())
}

// snapshotToAtom rehydrates a snapshot into a transient atom whose versions
// all start at the snapshot's ValidFrom.
func snapshotToAtom(s *Snapshot, t *schema.AtomType) *Atom {
	a := NewAtom(s.ID, t)
	life := temporal.Open(s.ValidFrom)
	if s.Deleted {
		a.Lifespan = nil
	} else {
		a.Lifespan = temporal.NewElement(life)
	}
	for i := range a.Attrs {
		ad := &a.Attrs[i]
		if ad.Set {
			for _, v := range s.Sets[ad.Name] {
				ad.Versions = append(ad.Versions, Version{Valid: life, Trans: temporal.Open(s.TransFrom), Val: v})
			}
			continue
		}
		if v, ok := s.Vals[ad.Name]; ok && !v.IsNull() {
			ad.Versions = append(ad.Versions, Version{Valid: life, Trans: temporal.Open(s.TransFrom), Val: v})
		}
	}
	for k, ids := range s.BackRefs {
		for _, id := range ids {
			a.BackRefs[k] = append(a.BackRefs[k], Version{Valid: life, Trans: temporal.Open(s.TransFrom), Val: value.Ref(id)})
		}
	}
	return a
}

// --- Back-reference maintenance --------------------------------------------

func (m *Manager) addBackRefTo(target value.ID, sourceType, attr string, source value.ID, iv temporal.Interval, tt temporal.Instant) error {
	return m.mutate(target, iv, func(a *Atom) ([]Version, error) {
		a.addBackRef(sourceType, attr, source, iv, tt)
		return nil, nil
	}, tt)
}

func (m *Manager) trimBackRefOn(target value.ID, sourceType, attr string, source value.ID, iv temporal.Interval, tt temporal.Instant) error {
	return m.mutate(target, iv, func(a *Atom) ([]Version, error) {
		a.trimBackRef(sourceType, attr, source, iv, tt)
		return nil, nil
	}, tt)
}
