// Package atom implements the temporal atom layer: atoms (typed records
// with system surrogates) whose attributes carry bitemporal version
// histories, realized on the storage substrate under three alternative
// physical mappings — the design space the paper's evaluation explores:
//
//   - StrategyEmbedded: an atom and its complete history live in one heap
//     record; every update rewrites the record.
//   - StrategySeparated: the current state lives in a compact current
//     record; superseded versions migrate to chained history segments, so
//     current-state access never pays for history length.
//   - StrategyTuple: classic tuple versioning; every update writes a whole
//     new snapshot record chained to its predecessor.
package atom

import (
	"fmt"
	"sort"

	"tcodm/internal/schema"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// Version is one bitemporally stamped value of an attribute. For set-valued
// attributes (Many-cardinality references and back-references) several
// versions may hold at the same valid instant, one per set member; for
// plain attributes the versions live at any one transaction time have
// pairwise disjoint valid intervals.
type Version struct {
	Valid temporal.Interval // when the value holds in modelled reality
	Trans temporal.Interval // when the version was part of the stored state
	Val   value.V
}

// VisibleAt reports whether the version holds at valid time vt as recorded
// at transaction time tt.
func (v Version) VisibleAt(vt, tt temporal.Instant) bool {
	return v.Valid.Contains(vt) && v.Trans.Contains(tt)
}

// Live reports whether the version belongs to the current recorded state.
func (v Version) Live() bool { return v.Trans.IsOpenEnded() }

// currentShaped reports whether the version belongs in a separated-strategy
// current record: live and open-ended into the valid future.
func (v Version) currentShaped() bool { return v.Live() && v.Valid.IsOpenEnded() }

// AttrData is the stored state of one attribute: its full version history.
// Set reports set semantics (multiple concurrently valid versions).
type AttrData struct {
	Name     string
	Set      bool
	Versions []Version
}

// Atom is the in-memory form of one temporal atom. BackRefs hold the
// inverse direction of every reference pointing at this atom (the MAD
// model's bidirectional links), keyed by "SourceType.attr".
type Atom struct {
	ID       value.ID
	Type     string
	Lifespan temporal.Element
	Attrs    []AttrData
	BackRefs map[string][]Version
	// Arc points at the atom's archived (cold-tiered) history; zero when
	// every version is still in the hot store. Mutations re-encode it
	// untouched — only ArchiveOlderThan moves it.
	Arc ArcPtr
}

// NewAtom builds an empty atom shaped by its schema type.
func NewAtom(id value.ID, t *schema.AtomType) *Atom {
	a := &Atom{ID: id, Type: t.Name, BackRefs: map[string][]Version{}}
	a.Attrs = make([]AttrData, len(t.Attrs))
	for i, at := range t.Attrs {
		a.Attrs[i] = AttrData{Name: at.Name, Set: at.IsRef() && at.Card == schema.Many}
	}
	return a
}

// Attr returns the attribute data by name, or nil.
func (a *Atom) Attr(name string) *AttrData {
	for i := range a.Attrs {
		if a.Attrs[i].Name == name {
			return &a.Attrs[i]
		}
	}
	return nil
}

// AliveAt reports whether the atom exists at valid time vt.
func (a *Atom) AliveAt(vt temporal.Instant) bool { return a.Lifespan.Contains(vt) }

// --- Temporal mutation logic (shared by all physical strategies) --------

// spliceVersion records a new value for a plain (non-set) attribute over
// valid interval iv at transaction time tt. Every live version overlapping
// iv is logically deleted (its transaction interval closed) and re-recorded
// for the parts of its validity outside iv. The superseded versions are
// returned so strategies that migrate history can act on them.
func (ad *AttrData) spliceVersion(iv temporal.Interval, val value.V, tt temporal.Instant) (superseded []Version, err error) {
	if ad.Set {
		return nil, fmt.Errorf("atom: spliceVersion on set attribute %q", ad.Name)
	}
	if iv.IsEmpty() {
		return nil, fmt.Errorf("atom: empty valid interval for %q", ad.Name)
	}
	var kept []Version
	var continuations []Version
	for _, v := range ad.Versions {
		if !v.Live() || !v.Valid.Overlaps(iv) {
			kept = append(kept, v)
			continue
		}
		closed := v
		closed.Trans.To = tt
		kept = append(kept, closed)
		superseded = append(superseded, closed)
		// Re-record the untouched parts of the old validity.
		for _, rest := range (temporal.Element{v.Valid}).SubtractInterval(iv) {
			continuations = append(continuations, Version{
				Valid: rest,
				Trans: temporal.Open(tt),
				Val:   v.Val,
			})
		}
	}
	kept = append(kept, continuations...)
	kept = append(kept, Version{Valid: iv, Trans: temporal.Open(tt), Val: val})
	ad.Versions = kept
	return superseded, nil
}

// addSetMember records that val joins the set over iv at transaction tt.
// Overlapping live versions with the same value are absorbed (their valid
// intervals merged) to keep histories coalesced.
func (ad *AttrData) addSetMember(iv temporal.Interval, val value.V, tt temporal.Instant) (superseded []Version, err error) {
	if !ad.Set {
		return nil, fmt.Errorf("atom: addSetMember on plain attribute %q", ad.Name)
	}
	if iv.IsEmpty() {
		return nil, fmt.Errorf("atom: empty valid interval for %q", ad.Name)
	}
	covered := temporal.Element{iv}
	var kept []Version
	for _, v := range ad.Versions {
		if v.Live() && v.Val.Equal(val) && v.Valid.Mergeable(iv) {
			if v.Valid.ContainsInterval(iv) {
				return nil, nil // already a member throughout iv: no-op
			}
			closed := v
			closed.Trans.To = tt
			kept = append(kept, closed)
			superseded = append(superseded, closed)
			covered = covered.Union(temporal.Element{v.Valid})
			continue
		}
		kept = append(kept, v)
	}
	for _, part := range covered {
		kept = append(kept, Version{Valid: part, Trans: temporal.Open(tt), Val: val})
	}
	ad.Versions = kept
	return superseded, nil
}

// removeSetMember records that val leaves the set over iv at transaction
// time tt.
func (ad *AttrData) removeSetMember(iv temporal.Interval, val value.V, tt temporal.Instant) (superseded []Version, err error) {
	if !ad.Set {
		return nil, fmt.Errorf("atom: removeSetMember on plain attribute %q", ad.Name)
	}
	var kept []Version
	var continuations []Version
	for _, v := range ad.Versions {
		if !v.Live() || !v.Val.Equal(val) || !v.Valid.Overlaps(iv) {
			kept = append(kept, v)
			continue
		}
		closed := v
		closed.Trans.To = tt
		kept = append(kept, closed)
		superseded = append(superseded, closed)
		for _, rest := range (temporal.Element{v.Valid}).SubtractInterval(iv) {
			continuations = append(continuations, Version{Valid: rest, Trans: temporal.Open(tt), Val: v.Val})
		}
	}
	kept = append(kept, continuations...)
	ad.Versions = kept
	return superseded, nil
}

// ValueAt returns the attribute's value at (vt, tt) for a plain attribute
// (Null if none holds).
func (ad *AttrData) ValueAt(vt, tt temporal.Instant) value.V {
	for i := len(ad.Versions) - 1; i >= 0; i-- {
		if ad.Versions[i].VisibleAt(vt, tt) {
			return ad.Versions[i].Val
		}
	}
	return value.Null
}

// SetAt returns all values holding at (vt, tt) for a set attribute.
func (ad *AttrData) SetAt(vt, tt temporal.Instant) []value.V {
	var out []value.V
	for _, v := range ad.Versions {
		if v.VisibleAt(vt, tt) {
			out = append(out, v.Val)
		}
	}
	return out
}

// HistoryAt returns the valid-time history as recorded at transaction time
// tt: visible versions sorted by valid start.
func (ad *AttrData) HistoryAt(tt temporal.Instant) []Version {
	var out []Version
	for _, v := range ad.Versions {
		if v.Trans.Contains(tt) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Valid.From != out[j].Valid.From {
			return out[i].Valid.From < out[j].Valid.From
		}
		return out[i].Val.Compare(out[j].Val) < 0
	})
	return out
}

// CheckInvariant verifies the disjoint-valid invariant for plain attributes
// at transaction time tt (test and debugging support).
func (ad *AttrData) CheckInvariant(tt temporal.Instant) error {
	if ad.Set {
		return nil
	}
	hist := ad.HistoryAt(tt)
	for i := 1; i < len(hist); i++ {
		if hist[i-1].Valid.Overlaps(hist[i].Valid) {
			return fmt.Errorf("atom: attribute %q has overlapping valid intervals %v and %v at tt=%v",
				ad.Name, hist[i-1].Valid, hist[i].Valid, tt)
		}
	}
	return nil
}

// backRefKey names the inverse direction of a reference attribute.
func backRefKey(sourceType, attr string) string { return sourceType + "." + attr }

// addBackRef records an inverse link version on the target atom.
func (a *Atom) addBackRef(sourceType, attr string, source value.ID, iv temporal.Interval, tt temporal.Instant) {
	key := backRefKey(sourceType, attr)
	a.BackRefs[key] = append(a.BackRefs[key], Version{
		Valid: iv,
		Trans: temporal.Open(tt),
		Val:   value.Ref(source),
	})
}

// trimBackRef closes the inverse link from source over iv at transaction tt.
func (a *Atom) trimBackRef(sourceType, attr string, source value.ID, iv temporal.Interval, tt temporal.Instant) {
	key := backRefKey(sourceType, attr)
	var kept, continuations []Version
	for _, v := range a.BackRefs[key] {
		if !v.Live() || v.Val.AsID() != source || !v.Valid.Overlaps(iv) {
			kept = append(kept, v)
			continue
		}
		closed := v
		closed.Trans.To = tt
		kept = append(kept, closed)
		for _, rest := range (temporal.Element{v.Valid}).SubtractInterval(iv) {
			continuations = append(continuations, Version{Valid: rest, Trans: temporal.Open(tt), Val: v.Val})
		}
	}
	kept = append(kept, continuations...)
	if len(kept) == 0 {
		delete(a.BackRefs, key)
		return
	}
	a.BackRefs[key] = kept
}

// BackRefsAt returns the IDs of atoms whose reference attr (declared on
// sourceType) points at this atom at (vt, tt).
func (a *Atom) BackRefsAt(sourceType, attr string, vt, tt temporal.Instant) []value.ID {
	var out []value.ID
	for _, v := range a.BackRefs[backRefKey(sourceType, attr)] {
		if v.VisibleAt(vt, tt) {
			out = append(out, v.Val.AsID())
		}
	}
	return out
}
