package atom

import (
	"fmt"

	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// Vacuum removes versions that stopped being part of the recorded state
// before transaction time beforeTT: after vacuuming, queries with
// tt >= beforeTT answer exactly as before, while older ASOF queries lose
// the pruned detail. This is the transaction-time purge every append-only
// temporal store eventually needs — valid-time history is never touched.
//
// Returns the number of versions (or, for the tuple strategy, snapshot
// records) removed.
func (m *Manager) Vacuum(beforeTT temporal.Instant) (int, error) {
	removed := 0
	for _, typeName := range m.schema.AtomTypeNames() {
		ids, err := m.IDs(typeName)
		if err != nil {
			return removed, err
		}
		for _, id := range ids {
			n, err := m.vacuumAtom(id, beforeTT)
			if err != nil {
				return removed, err
			}
			removed += n
		}
	}
	return removed, nil
}

func (m *Manager) vacuumAtom(id value.ID, beforeTT temporal.Instant) (int, error) {
	if m.opts.Strategy == StrategyTuple {
		return m.tupleVacuum(id, beforeTT)
	}
	removed := 0
	// A span starting at Beginning forces the separated strategy onto its
	// full-materialization path, so filtering sees every version.
	err := m.mutate(id, temporal.Open(temporal.Beginning), func(a *Atom) ([]Version, error) {
		dead := func(v Version) bool {
			return !v.Trans.IsOpenEnded() && v.Trans.To <= beforeTT
		}
		for i := range a.Attrs {
			ad := &a.Attrs[i]
			kept := ad.Versions[:0]
			for _, v := range ad.Versions {
				if dead(v) {
					removed++
					continue
				}
				kept = append(kept, v)
			}
			ad.Versions = kept
		}
		for k, vs := range a.BackRefs {
			kept := vs[:0]
			for _, v := range vs {
				if dead(v) {
					removed++
					continue
				}
				kept = append(kept, v)
			}
			if len(kept) == 0 {
				delete(a.BackRefs, k)
			} else {
				a.BackRefs[k] = kept
			}
		}
		return nil, nil
	}, beforeTT)
	return removed, err
}

// tupleVacuum rewrites the snapshot chain, dropping records no query with
// tt >= beforeTT can reach. Under tuple versioning each snapshot doubles
// as a valid-time version, so a record stays reachable at tt = Now for old
// valid instants: only snapshots whose valid window was re-covered by a
// successor recorded before beforeTT (same ValidFrom) are dead. This is a
// genuine weakness of the strategy — transaction-time garbage is largely
// unreclaimable — and the experiments document it.
func (m *Manager) tupleVacuum(id value.ID, beforeTT temporal.Instant) (int, error) {
	rid, err := m.homeRID(id)
	if err != nil {
		return 0, err
	}
	chain, err := m.tupleChain(rid, nil) // oldest first
	if err != nil {
		return 0, err
	}
	keep := make([]bool, len(chain))
	keep[len(chain)-1] = true // the newest is always visible
	for i := 0; i+1 < len(chain); i++ {
		next := chain[i+1]
		superseded := next.ValidFrom <= chain[i].ValidFrom && next.TransFrom <= beforeTT
		keep[i] = !superseded
	}
	removedCount := 0
	for _, k := range keep {
		if !k {
			removedCount++
		}
	}
	if removedCount == 0 {
		return 0, nil
	}
	// Rewrite the chain oldest-first so Prev pointers resolve, then delete
	// the old records and repoint the indexes.
	oldRIDs, err := m.tupleChainRIDs(rid)
	if err != nil {
		return 0, err
	}
	prev := storage.NilRID
	var newest storage.RID
	var typeName string
	for i, snap := range chain {
		if !keep[i] {
			continue
		}
		cp := *snap
		cp.Prev = prev
		newRID, err := m.heap.Insert(EncodeSnapshot(&cp))
		if err != nil {
			return 0, err
		}
		prev = newRID
		newest = newRID
		typeName = snap.Type
	}
	for _, old := range oldRIDs {
		if err := m.heap.Delete(old); err != nil {
			return 0, err
		}
	}
	if err := m.idxPut(m.primary, primaryKey(id), newest.Pack()); err != nil {
		return 0, err
	}
	if err := m.idxPut(m.typeIdx, typeKey(typeName, id), newest.Pack()); err != nil {
		return 0, err
	}
	return removedCount, nil
}

// tupleChainRIDs collects the record IDs of a snapshot chain, oldest first.
func (m *Manager) tupleChainRIDs(rid storage.RID) ([]storage.RID, error) {
	var out []storage.RID
	for rid.IsValid() {
		data, err := m.heap.Fetch(rid)
		if err != nil {
			return nil, err
		}
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return nil, err
		}
		out = append(out, rid)
		rid = snap.Prev
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, nil
}

// ErrVacuumFuture guards against purging the present.
var ErrVacuumFuture = fmt.Errorf("atom: vacuum bound must not exceed the current transaction time")
