package atom

import (
	"fmt"

	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// Vacuum removes versions that stopped being part of the recorded state
// before transaction time beforeTT: after vacuuming, queries with
// tt >= beforeTT answer exactly as before, while older ASOF queries lose
// the pruned detail. This is the transaction-time purge every append-only
// temporal store eventually needs — valid-time history is never touched.
//
// Returns the number of versions (or, for the tuple strategy, snapshot
// records) removed.
func (m *Manager) Vacuum(beforeTT temporal.Instant) (int, error) {
	removed := 0
	for _, typeName := range m.schema.AtomTypeNames() {
		ids, err := m.IDs(typeName)
		if err != nil {
			return removed, err
		}
		for _, id := range ids {
			n, err := m.vacuumAtom(id, beforeTT)
			if err != nil {
				return removed, err
			}
			removed += n
		}
	}
	return removed, nil
}

func (m *Manager) vacuumAtom(id value.ID, beforeTT temporal.Instant) (int, error) {
	if m.opts.Strategy == StrategyTuple {
		return m.tupleVacuum(id, beforeTT)
	}
	// Probe on a throwaway load first: an atom with nothing dead is skipped
	// without a rewrite — no dirty pages, no WAL bytes. The probe pays a
	// read the rewrite would have paid anyway.
	probe, _, _, err := m.loadHot(id, nil)
	if err != nil {
		return 0, err
	}
	if countDead(probe, beforeTT) == 0 && !(!probe.Arc.IsZero() && beforeTT >= probe.Arc.WM) {
		return 0, nil
	}
	removed := 0
	// A span starting at Beginning forces the separated strategy onto its
	// full-materialization path, so filtering sees every version.
	err = m.mutate(id, temporal.Open(temporal.Beginning), func(a *Atom) ([]Version, error) {
		dead := func(v Version) bool {
			return !v.Trans.IsOpenEnded() && v.Trans.To <= beforeTT
		}
		// Archived versions are by construction dead before the archive
		// watermark: a vacuum bound at or past it purges them too. Merge
		// them back so the dead filter below counts and drops them, and
		// clear the pointer — the archive blocks become unreferenced.
		if !a.Arc.IsZero() && beforeTT >= a.Arc.WM {
			if err := m.arcLoadInto(a, nil); err != nil {
				return nil, err
			}
			a.Arc = ArcPtr{}
		}
		for i := range a.Attrs {
			ad := &a.Attrs[i]
			kept := ad.Versions[:0]
			for _, v := range ad.Versions {
				if dead(v) {
					removed++
					continue
				}
				kept = append(kept, v)
			}
			ad.Versions = kept
		}
		for k, vs := range a.BackRefs {
			kept := vs[:0]
			for _, v := range vs {
				if dead(v) {
					removed++
					continue
				}
				kept = append(kept, v)
			}
			if len(kept) == 0 {
				delete(a.BackRefs, k)
			} else {
				a.BackRefs[k] = kept
			}
		}
		return nil, nil
	}, beforeTT)
	return removed, err
}

// countDead counts hot versions no query at tt >= beforeTT can see.
func countDead(a *Atom, beforeTT temporal.Instant) int {
	n := 0
	for i := range a.Attrs {
		for _, v := range a.Attrs[i].Versions {
			if deadBefore(v, beforeTT) {
				n++
			}
		}
	}
	for _, vs := range a.BackRefs {
		for _, v := range vs {
			if deadBefore(v, beforeTT) {
				n++
			}
		}
	}
	return n
}

// tupleVacuum rewrites the snapshot chain, dropping records no query with
// tt >= beforeTT can reach. Under tuple versioning each snapshot doubles
// as a valid-time version, so a record stays reachable at tt = Now for old
// valid instants: only snapshots whose valid window was re-covered by a
// successor recorded before beforeTT (same ValidFrom) are dead. This is a
// genuine weakness of the strategy — transaction-time garbage is largely
// unreclaimable — and the experiments document it.
func (m *Manager) tupleVacuum(id value.ID, beforeTT temporal.Instant) (int, error) {
	rid, err := m.homeRID(id)
	if err != nil {
		return 0, err
	}
	chain, err := m.tupleChain(rid, nil) // oldest first, hot records only
	if err != nil {
		return 0, err
	}
	// Archived snapshots are superseded below the archive watermark: a
	// vacuum bound at or past it purges them too — merge them into the
	// rewrite (the keep rule below rejects them all) and drop the pointer.
	// Below the watermark the archive is out of vacuum's reach; the pointer
	// must survive the rewrite on the new oldest snapshot.
	carryArc := ArcPtr{}
	if len(chain) > 0 && !chain[0].Arc.IsZero() {
		if beforeTT >= chain[0].Arc.WM {
			arch, err := m.arcSnapChain(chain[0].Arc, nil)
			if err != nil {
				return 0, err
			}
			chain = append(arch, chain...)
		} else {
			carryArc = chain[0].Arc
		}
	}
	keep := make([]bool, len(chain))
	keep[len(chain)-1] = true // the newest is always visible
	for i := 0; i+1 < len(chain); i++ {
		next := chain[i+1]
		superseded := next.ValidFrom <= chain[i].ValidFrom && next.TransFrom <= beforeTT
		keep[i] = !superseded
	}
	removedCount := 0
	for _, k := range keep {
		if !k {
			removedCount++
		}
	}
	if removedCount == 0 {
		return 0, nil
	}
	// Rewrite the chain oldest-first so Prev pointers resolve, then delete
	// the old records and repoint the indexes.
	oldRIDs, err := m.tupleChainRIDs(rid)
	if err != nil {
		return 0, err
	}
	prev := storage.NilRID
	var newest storage.RID
	var typeName string
	for i, snap := range chain {
		if !keep[i] {
			continue
		}
		cp := *snap
		cp.Prev = prev
		cp.Arc = carryArc
		carryArc = ArcPtr{} // only the oldest kept snapshot carries it
		newRID, err := m.heap.Insert(EncodeSnapshot(&cp))
		if err != nil {
			return 0, err
		}
		prev = newRID
		newest = newRID
		typeName = snap.Type
	}
	for _, old := range oldRIDs {
		if err := m.heap.Delete(old); err != nil {
			return 0, err
		}
	}
	if err := m.idxPut(m.primary, primaryKey(id), newest.Pack()); err != nil {
		return 0, err
	}
	if err := m.idxPut(m.typeIdx, typeKey(typeName, id), newest.Pack()); err != nil {
		return 0, err
	}
	return removedCount, nil
}

// tupleChainRIDs collects the record IDs of a snapshot chain, oldest first.
func (m *Manager) tupleChainRIDs(rid storage.RID) ([]storage.RID, error) {
	var out []storage.RID
	for rid.IsValid() {
		data, err := m.heap.Fetch(rid)
		if err != nil {
			return nil, err
		}
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return nil, err
		}
		out = append(out, rid)
		rid = snap.Prev
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, nil
}

// ErrVacuumFuture guards against purging the present.
var ErrVacuumFuture = fmt.Errorf("atom: vacuum bound must not exceed the current transaction time")
