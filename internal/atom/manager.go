package atom

import (
	"encoding/binary"
	"fmt"

	"tcodm/internal/index"
	"tcodm/internal/obs"
	"tcodm/internal/schema"
	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// Strategy selects the physical mapping of temporal atoms onto records.
type Strategy uint8

const (
	// StrategyEmbedded stores an atom with its full history in one record.
	StrategyEmbedded Strategy = iota
	// StrategySeparated stores current state and history separately.
	StrategySeparated
	// StrategyTuple stores one whole-state snapshot record per change.
	StrategyTuple
)

var strategyNames = [...]string{"embedded", "separated", "tuple"}

// String returns the strategy's name.
func (s Strategy) String() string {
	if int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return fmt.Sprintf("strategy(%d)", uint8(s))
}

// ParseStrategy maps a name to its Strategy.
func ParseStrategy(name string) (Strategy, bool) {
	for i, n := range strategyNames {
		if n == name {
			return Strategy(i), true
		}
	}
	return 0, false
}

// ErrStrategy reports an operation the active strategy cannot express
// (tuple versioning supports only forward, open-ended changes).
var ErrStrategy = fmt.Errorf("atom: operation not supported by the active storage strategy")

// ErrNotFound reports a missing atom.
var ErrNotFound = fmt.Errorf("atom: not found")

// Options configure a Manager.
type Options struct {
	Strategy Strategy
	// SegmentCap bounds entries per history segment (separated strategy).
	SegmentCap int
	// TimeIndex maintains the version time index (valid-start B+-tree).
	TimeIndex bool
	// ValueIndex maintains the secondary value index over every plain
	// attribute (equality/range predicate support).
	ValueIndex bool
}

// Stats counts physical work, letting benchmarks attribute costs. It is a
// point-in-time view over the manager's obs metrics (see atomMetrics), kept
// for callers that predate the observability layer.
type Stats struct {
	FastLoads    uint64 // reads satisfied by the current record alone
	FullLoads    uint64 // reads that materialized the complete history
	SegmentReads uint64 // history segments fetched
	SnapshotHops uint64 // tuple-chain records walked
}

// atomMetrics holds the manager's instrumentation handles. Defaults are
// standalone obs counters so direct-construction callers (tests, tools)
// still get Stats(); SetMetrics rebinds to a registry or disables them.
// The counters sit on hot read paths and stay counter-only; the chain-depth
// and decode-latency histograms fire once per full materialization, which
// is already a multi-page operation.
type atomMetrics struct {
	fastLoads        *obs.Counter
	fullLoads        *obs.Counter
	segmentReads     *obs.Counter
	snapshotHops     *obs.Counter
	archivedVersions *obs.Counter   // versions migrated to the cold archive
	chainDepth       *obs.Histogram // segments (or snapshots) walked per full load
	decodeNS         *obs.Histogram // full-history materialization latency
}

func standaloneAtomMetrics() atomMetrics {
	return atomMetrics{
		fastLoads:        obs.NewCounter(),
		fullLoads:        obs.NewCounter(),
		segmentReads:     obs.NewCounter(),
		snapshotHops:     obs.NewCounter(),
		archivedVersions: obs.NewCounter(),
		chainDepth:       obs.NewHistogram(),
		decodeNS:         obs.NewHistogram(),
	}
}

// Manager realizes temporal atoms on the heap under one strategy, with a
// primary index (surrogate -> home RID), a type index for scans, and an
// optional time index on version valid-start instants. All mutation
// methods take the transaction-time instant assigned by the caller's
// transaction.
type Manager struct {
	heap     *storage.Heap
	schema   *schema.Schema
	opts     Options
	primary  *index.BPTree
	typeIdx  *index.BPTree
	timeIdx  *index.BPTree // nil unless opts.TimeIndex
	valueIdx *index.BPTree // nil unless opts.ValueIndex
	nextID   uint64
	met      atomMetrics
	idxUndo  IndexUndo
	arc      ArchiveSink // cold archive (nil until SetArchive)
	// maxTrans is the largest transaction-time instant seen by the last
	// RebuildIndexes scan. After recovery the engine clock must advance
	// past it, or post-recovery commits would reuse transaction times
	// already bound to replayed versions.
	maxTrans temporal.Instant
}

// MaxTransactionTime returns the largest transaction-time instant observed
// by the most recent RebuildIndexes scan (zero before any rebuild).
func (m *Manager) MaxTransactionTime() temporal.Instant { return m.maxTrans }

// IndexUndo receives inverse operations for index mutations so the
// transaction layer can roll indexes back on abort (indexes are unlogged
// derived state; heap undo alone would leave them stale).
type IndexUndo interface {
	RecordIndexUndo(undo func() error)
}

// Roots carries the page IDs that identify the manager's indexes, for
// persistence in the engine meta payload.
type Roots struct {
	Primary storage.PageID
	Type    storage.PageID
	Time    storage.PageID // InvalidPage when no time index
	Value   storage.PageID // InvalidPage when no value index
	NextID  uint64
}

// NewManager creates a manager with fresh, empty indexes.
func NewManager(heap *storage.Heap, pool *storage.BufferPool, sch *schema.Schema, opts Options) (*Manager, error) {
	if opts.SegmentCap <= 0 {
		opts.SegmentCap = 32
	}
	primary, err := index.New(pool)
	if err != nil {
		return nil, err
	}
	typeIdx, err := index.New(pool)
	if err != nil {
		return nil, err
	}
	m := &Manager{heap: heap, schema: sch, opts: opts, primary: primary, typeIdx: typeIdx, nextID: 1,
		met: standaloneAtomMetrics()}
	if opts.TimeIndex {
		ti, err := index.New(pool)
		if err != nil {
			return nil, err
		}
		m.timeIdx = ti
	}
	if opts.ValueIndex {
		vi, err := index.New(pool)
		if err != nil {
			return nil, err
		}
		m.valueIdx = vi
	}
	return m, nil
}

// OpenManager attaches to existing indexes identified by roots.
func OpenManager(heap *storage.Heap, pool *storage.BufferPool, sch *schema.Schema, opts Options, roots Roots) (*Manager, error) {
	if opts.SegmentCap <= 0 {
		opts.SegmentCap = 32
	}
	primary, err := index.Open(pool, roots.Primary)
	if err != nil {
		return nil, err
	}
	typeIdx, err := index.Open(pool, roots.Type)
	if err != nil {
		return nil, err
	}
	m := &Manager{heap: heap, schema: sch, opts: opts, primary: primary, typeIdx: typeIdx, nextID: roots.NextID,
		met: standaloneAtomMetrics()}
	if opts.TimeIndex {
		if roots.Time == storage.InvalidPage {
			return nil, fmt.Errorf("atom: time index requested but no persisted root")
		}
		ti, err := index.Open(pool, roots.Time)
		if err != nil {
			return nil, err
		}
		m.timeIdx = ti
	}
	if opts.ValueIndex {
		if roots.Value == storage.InvalidPage {
			return nil, fmt.Errorf("atom: value index requested but no persisted root")
		}
		vi, err := index.Open(pool, roots.Value)
		if err != nil {
			return nil, err
		}
		m.valueIdx = vi
	}
	return m, nil
}

// Roots returns the persistence handles of the manager's indexes.
func (m *Manager) Roots() Roots {
	r := Roots{Primary: m.primary.Root(), Type: m.typeIdx.Root(),
		Time: storage.InvalidPage, Value: storage.InvalidPage, NextID: m.nextID}
	if m.timeIdx != nil {
		r.Time = m.timeIdx.Root()
	}
	if m.valueIdx != nil {
		r.Value = m.valueIdx.Root()
	}
	return r
}

// SetIndexUndo installs (or removes, with nil) the index-undo sink.
func (m *Manager) SetIndexUndo(r IndexUndo) { m.idxUndo = r }

// idxPut inserts into an index tree, capturing the inverse operation.
func (m *Manager) idxPut(t *index.BPTree, key []byte, val uint64) error {
	if m.idxUndo != nil {
		prior, ok, err := t.Get(key)
		if err != nil {
			return err
		}
		k := append([]byte(nil), key...)
		if ok {
			m.idxUndo.RecordIndexUndo(func() error { return t.Insert(k, prior) })
		} else {
			m.idxUndo.RecordIndexUndo(func() error { _, err := t.Delete(k); return err })
		}
	}
	return t.Insert(key, val)
}

// SetMetrics binds the manager's instrumentation to reg under "atom.*"
// names. A nil registry disables instrumentation entirely. Call before
// concurrent use: the handles are read without synchronization on read
// paths that run under the engine's shared lock.
func (m *Manager) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		m.met = atomMetrics{}
		return
	}
	m.met = atomMetrics{
		fastLoads:        reg.Counter("atom.fast_loads"),
		fullLoads:        reg.Counter("atom.full_loads"),
		segmentReads:     reg.Counter("atom.segment_reads"),
		snapshotHops:     reg.Counter("atom.snapshot_hops"),
		archivedVersions: reg.Counter("atom.archived_versions"),
		chainDepth:       reg.Histogram("atom.chain_depth"),
		decodeNS:         reg.Histogram("atom.decode_ns"),
	}
}

// Stats returns the physical-work counters. The counters are atomic
// because read paths bump them under the engine's shared read lock
// (concurrent readers would otherwise race).
func (m *Manager) Stats() Stats {
	return Stats{
		FastLoads:    m.met.fastLoads.Value(),
		FullLoads:    m.met.fullLoads.Value(),
		SegmentReads: m.met.segmentReads.Value(),
		SnapshotHops: m.met.snapshotHops.Value(),
	}
}

// ResetStats zeroes the counters (benchmark support).
func (m *Manager) ResetStats() {
	m.met.fastLoads.Reset()
	m.met.fullLoads.Reset()
	m.met.segmentReads.Reset()
	m.met.snapshotHops.Reset()
}

// Strategy returns the active storage strategy.
func (m *Manager) Strategy() Strategy { return m.opts.Strategy }

// HasTimeIndex reports whether the version time index is maintained.
func (m *Manager) HasTimeIndex() bool { return m.timeIdx != nil }

// Schema returns the schema the manager validates against.
func (m *Manager) Schema() *schema.Schema { return m.schema }

// Count returns the number of live atoms (primary index entries).
func (m *Manager) Count() int { return m.primary.Len() }

// --- Key helpers ---------------------------------------------------------

func primaryKey(id value.ID) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id))
	return b[:]
}

func typeKey(typeName string, id value.ID) []byte {
	k := make([]byte, 0, len(typeName)+9)
	k = append(k, typeName...)
	k = append(k, 0)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id))
	return append(k, b[:]...)
}

func typePrefix(typeName string) []byte {
	k := make([]byte, 0, len(typeName)+1)
	k = append(k, typeName...)
	return append(k, 0)
}

// timeKey indexes a version by (type, attr, valid-start, atom).
func timeKey(typeName, attr string, from temporal.Instant, id value.ID) []byte {
	k := make([]byte, 0, len(typeName)+len(attr)+18)
	k = append(k, typeName...)
	k = append(k, 0)
	k = append(k, attr...)
	k = append(k, 0)
	k = temporal.AppendInstant(k, from)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id))
	return append(k, b[:]...)
}

func timePrefix(typeName, attr string) []byte {
	k := make([]byte, 0, len(typeName)+len(attr)+2)
	k = append(k, typeName...)
	k = append(k, 0)
	k = append(k, attr...)
	return append(k, 0)
}

// --- Insert ---------------------------------------------------------------

// Insert creates an atom of the given type with initial plain-attribute
// values, alive from validFrom on. Reference attributes of cardinality One
// may be initialized through vals (value.Ref); Many-references are attached
// afterwards with AddRef. Missing attributes start Null.
func (m *Manager) Insert(typeName string, vals map[string]value.V, validFrom, tt temporal.Instant) (value.ID, error) {
	t, ok := m.schema.AtomType(typeName)
	if !ok {
		return 0, fmt.Errorf("atom: unknown atom type %q", typeName)
	}
	id := value.ID(m.nextID)
	m.nextID++
	a := NewAtom(id, t)
	a.Lifespan = temporal.NewElement(temporal.Open(validFrom))
	life := temporal.Open(validFrom)

	type refInit struct {
		attr   string
		target value.ID
	}
	var refs []refInit
	for name, v := range vals {
		at, ok := t.Attr(name)
		if !ok {
			return 0, fmt.Errorf("atom: %s has no attribute %q", typeName, name)
		}
		if err := checkKind(at, v); err != nil {
			return 0, err
		}
		if at.IsRef() && at.Card == schema.Many {
			return 0, fmt.Errorf("atom: many-reference %q must be attached with AddRef", name)
		}
		if _, err := a.Attr(name).spliceVersion(life, v, tt); err != nil {
			return 0, err
		}
		if at.IsRef() && !v.IsNull() {
			refs = append(refs, refInit{attr: name, target: v.AsID()})
		}
	}
	for _, at := range t.Attrs {
		if at.Required {
			if v, ok := vals[at.Name]; !ok || v.IsNull() {
				return 0, fmt.Errorf("atom: required attribute %s.%s missing", typeName, at.Name)
			}
		}
	}

	var rid storage.RID
	var err error
	switch m.opts.Strategy {
	case StrategyEmbedded:
		rid, err = m.heap.Insert(EncodeFull(a))
	case StrategySeparated:
		rid, err = m.heap.Insert(EncodeCurrent(a, SepHeader{Head: storage.NilRID, Watermark: temporal.Beginning}))
	case StrategyTuple:
		snap := atomToSnapshot(a, validFrom, tt)
		rid, err = m.heap.Insert(EncodeSnapshot(snap))
	default:
		err = fmt.Errorf("atom: unknown strategy %d", m.opts.Strategy)
	}
	if err != nil {
		return 0, err
	}
	if err := m.idxPut(m.primary, primaryKey(id), rid.Pack()); err != nil {
		return 0, err
	}
	if err := m.idxPut(m.typeIdx, typeKey(typeName, id), rid.Pack()); err != nil {
		return 0, err
	}
	if m.timeIdx != nil {
		for name := range vals {
			if err := m.idxPut(m.timeIdx, timeKey(typeName, name, validFrom, id), uint64(id)); err != nil {
				return 0, err
			}
		}
	}
	for name, v := range vals {
		if err := m.noteValue(typeName, name, v, id); err != nil {
			return 0, err
		}
	}
	// Record the inverse direction of initial One-references.
	for _, r := range refs {
		if err := m.addBackRefTo(r.target, typeName, r.attr, id, life, tt); err != nil {
			return 0, err
		}
	}
	return id, nil
}

func checkKind(at schema.Attribute, v value.V) error {
	if v.IsNull() {
		return nil
	}
	if v.Kind() != at.Kind {
		return fmt.Errorf("atom: attribute %q wants %s, got %s", at.Name, at.Kind, v.Kind())
	}
	return nil
}

// atomToSnapshot projects the atom's state at its creation into a
// tuple-strategy snapshot.
func atomToSnapshot(a *Atom, validFrom, tt temporal.Instant) *Snapshot {
	s := &Snapshot{
		ID: a.ID, Type: a.Type, ValidFrom: validFrom, TransFrom: tt,
		Prev: storage.NilRID,
		Vals: map[string]value.V{}, Sets: map[string][]value.V{}, BackRefs: map[string][]value.ID{},
	}
	for _, ad := range a.Attrs {
		if ad.Set {
			s.Sets[ad.Name] = ad.SetAt(validFrom, tt)
			continue
		}
		s.Vals[ad.Name] = ad.ValueAt(validFrom, tt)
	}
	for k := range a.BackRefs {
		ids := make([]value.ID, 0)
		for _, v := range a.BackRefs[k] {
			if v.VisibleAt(validFrom, tt) {
				ids = append(ids, v.Val.AsID())
			}
		}
		if len(ids) > 0 {
			s.BackRefs[k] = ids
		}
	}
	return s
}

// homeRID resolves an atom's current home record.
func (m *Manager) homeRID(id value.ID) (storage.RID, error) {
	v, ok, err := m.primary.Get(primaryKey(id))
	if err != nil {
		return storage.NilRID, err
	}
	if !ok {
		return storage.NilRID, fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	return storage.UnpackRID(v), nil
}

// IDs returns all atom surrogates of a type, in ascending order.
func (m *Manager) IDs(typeName string) ([]value.ID, error) {
	var out []value.ID
	prefix := typePrefix(typeName)
	err := m.typeIdx.Scan(prefix, func(k []byte, v uint64) (bool, error) {
		if len(k) < len(prefix) || string(k[:len(prefix)]) != string(prefix) {
			return false, nil
		}
		out = append(out, value.ID(binary.BigEndian.Uint64(k[len(prefix):])))
		return true, nil
	})
	return out, err
}

// ScanType streams (id, home RID) pairs for a type.
func (m *Manager) ScanType(typeName string, fn func(id value.ID, rid storage.RID) (bool, error)) error {
	prefix := typePrefix(typeName)
	return m.typeIdx.Scan(prefix, func(k []byte, v uint64) (bool, error) {
		if len(k) < len(prefix) || string(k[:len(prefix)]) != string(prefix) {
			return false, nil
		}
		return fn(value.ID(binary.BigEndian.Uint64(k[len(prefix):])), storage.UnpackRID(v))
	})
}

// TimeIndexScan streams atom IDs with a version of (typeName, attr) whose
// valid interval starts before the bound (candidates for WHEN predicates).
// Returns ErrStrategy-like error when the time index is disabled.
func (m *Manager) TimeIndexScan(typeName, attr string, startBelow temporal.Instant, fn func(id value.ID) (bool, error)) error {
	if m.timeIdx == nil {
		return fmt.Errorf("atom: time index not enabled")
	}
	prefix := timePrefix(typeName, attr)
	end := temporal.AppendInstant(append([]byte(nil), prefix...), startBelow)
	return m.timeIdx.ScanRange(prefix, end, func(k []byte, v uint64) (bool, error) {
		return fn(value.ID(v))
	})
}

// SetSchema swaps the schema after DDL. Existing atom types are never
// removed or altered by the engine's DDL, so stored atoms remain valid.
func (m *Manager) SetSchema(s *schema.Schema) { m.schema = s }
