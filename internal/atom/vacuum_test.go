package atom

import (
	"testing"

	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

func TestVacuumPreservesRecentAnswers(t *testing.T) {
	forAllStrategies(t, func(t *testing.T, m *Manager) {
		id, err := m.Insert("Emp", map[string]value.V{
			"name": value.String_("v"), "salary": value.Int(100),
		}, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Updates at tt = 2..6 rewriting the whole future each time:
		// superseded versions accumulate.
		for i := 2; i <= 6; i++ {
			if err := m.UpdateAttr(id, "salary", value.Int(int64(i*100)), temporal.Open(temporal.Instant(i*10)), temporal.Instant(i)); err != nil {
				t.Fatal(err)
			}
		}
		// Capture the answers for tt >= 4 over the valid grid.
		type key struct{ vt, tt temporal.Instant }
		before := map[key]value.V{}
		for vt := temporal.Instant(0); vt <= 80; vt += 5 {
			for _, tt := range []temporal.Instant{4, 5, 6, Now} {
				st, err := m.StateAt(id, vt, tt)
				if err != nil {
					t.Fatal(err)
				}
				before[key{vt, tt}] = st.Vals["salary"]
			}
		}
		removed, err := m.Vacuum(4)
		if err != nil {
			t.Fatal(err)
		}
		// Attribute-versioning strategies reclaim the closed versions;
		// tuple versioning cannot (each snapshot doubles as a valid-time
		// version that stays reachable at tt=Now) — both must preserve
		// every tt >= 4 answer either way.
		if m.Strategy() != StrategyTuple && removed == 0 {
			t.Fatal("vacuum removed nothing despite superseded versions")
		}
		if m.Strategy() == StrategyTuple && removed != 0 {
			t.Fatalf("tuple vacuum removed %d reachable snapshots", removed)
		}
		for k, want := range before {
			st, err := m.StateAt(id, k.vt, k.tt)
			if err != nil {
				t.Fatal(err)
			}
			if got := st.Vals["salary"]; !got.Equal(want) {
				t.Errorf("after vacuum: salary(vt=%v tt=%v) = %v, want %v", k.vt, k.tt, got, want)
			}
		}
	})
}

func TestVacuumRemovesOldBelief(t *testing.T) {
	// Embedded and separated keep closed transaction intervals exactly, so
	// pre-vacuum ASOF answers demonstrably change (the purge is real).
	for _, s := range []Strategy{StrategyEmbedded, StrategySeparated} {
		t.Run(s.String(), func(t *testing.T) {
			m := newManager(t, s)
			id, _ := m.Insert("Emp", map[string]value.V{
				"name": value.String_("b"), "salary": value.Int(1),
			}, 0, 1)
			// tt=2: retroactive correction over [0, 10): the original
			// version is closed at tt=2.
			if err := m.UpdateAttr(id, "salary", value.Int(2), temporal.NewInterval(0, 10), 2); err != nil {
				t.Fatal(err)
			}
			// Before vacuum, ASOF tt=1 sees the original belief.
			st, _ := m.StateAt(id, 5, 1)
			if st.Vals["salary"].AsInt() != 1 {
				t.Fatalf("pre-vacuum belief = %v", st.Vals["salary"])
			}
			if _, err := m.Vacuum(2); err != nil {
				t.Fatal(err)
			}
			// The old belief is gone; current answers are intact.
			st, _ = m.StateAt(id, 5, 1)
			if got := st.Vals["salary"]; !got.IsNull() && got.AsInt() == 1 {
				t.Errorf("old belief survived vacuum: %v", got)
			}
			st, _ = m.StateAt(id, 5, Now)
			if st.Vals["salary"].AsInt() != 2 {
				t.Errorf("current answer broken by vacuum: %v", st.Vals["salary"])
			}
		})
	}
}

func TestVacuumNoopWhenNothingDead(t *testing.T) {
	forAllStrategies(t, func(t *testing.T, m *Manager) {
		id, _ := m.Insert("Emp", map[string]value.V{"name": value.String_("n"), "salary": value.Int(1)}, 0, 1)
		removed, err := m.Vacuum(100)
		if err != nil {
			t.Fatal(err)
		}
		if removed != 0 {
			t.Errorf("vacuum removed %d from a fresh atom", removed)
		}
		st, _ := m.StateAt(id, 10, Now)
		if st.Vals["salary"].AsInt() != 1 {
			t.Error("fresh atom damaged by no-op vacuum")
		}
	})
}

func TestVacuumShrinksTupleChain(t *testing.T) {
	// Tuple vacuum reclaims only snapshots whose valid window was
	// re-covered: repeated updates at the SAME valid instant create them.
	m := newManager(t, StrategyTuple)
	id, _ := m.Insert("Emp", map[string]value.V{"name": value.String_("t"), "salary": value.Int(0)}, 0, 1)
	for i := 2; i <= 10; i++ {
		if err := m.UpdateAttr(id, "salary", value.Int(int64(i)), temporal.Open(10), temporal.Instant(i)); err != nil {
			t.Fatal(err)
		}
	}
	m.ResetStats()
	if _, err := m.StateAt(id, 5, Now); err != nil { // oldest slice: walks whole chain
		t.Fatal(err)
	}
	hopsBefore := m.Stats().SnapshotHops
	removed, err := m.Vacuum(10)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 8 { // nine same-instant snapshots collapse to the newest
		t.Fatalf("tuple vacuum removed %d, want 8", removed)
	}
	m.ResetStats()
	st, err := m.StateAt(id, 5, Now)
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().SnapshotHops >= hopsBefore {
		t.Errorf("chain not shortened: %d hops before, %d after", hopsBefore, m.Stats().SnapshotHops)
	}
	// The insert-time snapshot survives and serves old valid slices.
	if st.Vals["salary"].IsNull() || st.Vals["salary"].AsInt() != 0 {
		t.Errorf("oldest surviving snapshot = %v", st.Vals["salary"])
	}
	// The newest value is intact.
	st, _ = m.StateAt(id, 50, Now)
	if st.Vals["salary"].AsInt() != 10 {
		t.Errorf("newest value = %v", st.Vals["salary"])
	}
}
