// Command tcoload bulk-loads a synthetic workload into a database file, so
// tcoq sessions and ad-hoc experiments have data to work with.
//
//	tcoload -db personnel.tdb -workload personnel -emps 1000 -updates 16
//	tcoload -db design.tdb -workload cad -fanout 4 -depth 3
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tcodm/internal/atom"
	"tcodm/internal/core"
	"tcodm/internal/schema"
	"tcodm/internal/temporal"
	"tcodm/internal/workload"
)

func main() {
	dbPath := flag.String("db", "", "database file (required)")
	wl := flag.String("workload", "personnel", "personnel or cad")
	strat := flag.String("strategy", "separated", "embedded, separated, or tuple")
	timeIndex := flag.Bool("timeindex", true, "maintain the version time index")
	batch := flag.Int("batch", 128, "operations per transaction")
	seed := flag.Int64("seed", 42, "workload seed")

	emps := flag.Int("emps", 500, "personnel: employees")
	depts := flag.Int("depts", 8, "personnel: departments")
	updates := flag.Int("updates", 8, "personnel: salary updates per employee")
	moves := flag.Int("moves", 2, "personnel: department moves per employee")

	assemblies := flag.Int("assemblies", 4, "cad: assemblies")
	fanout := flag.Int("fanout", 4, "cad: parts per level")
	depth := flag.Int("depth", 3, "cad: part nesting depth")
	revisions := flag.Int("revisions", 4, "cad: weight revisions per part")
	flag.Parse()

	if *dbPath == "" {
		fatal(fmt.Errorf("-db is required"))
	}
	strategy, ok := atom.ParseStrategy(*strat)
	if !ok {
		fatal(fmt.Errorf("unknown strategy %q", *strat))
	}

	var sch *schema.Schema
	var ops []workload.Op
	var err error
	switch *wl {
	case "personnel":
		sch, err = workload.PersonnelSchema()
		ops = workload.Personnel(workload.PersonnelParams{
			Depts: *depts, Emps: *emps, UpdatesPerEmp: *updates, MovesPerEmp: *moves,
			TimeStep: 10, Seed: *seed,
		})
	case "cad":
		sch, err = workload.CADSchema()
		ops = workload.CAD(workload.CADParams{
			Assemblies: *assemblies, Fanout: *fanout, Depth: *depth, Revisions: *revisions,
			TimeStep: 10, Seed: *seed,
		})
	default:
		fatal(fmt.Errorf("unknown workload %q", *wl))
	}
	if err != nil {
		fatal(err)
	}

	db, err := core.Open(core.Options{Path: *dbPath, Strategy: strategy, TimeIndex: *timeIndex})
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	for _, name := range sch.AtomTypeNames() {
		at, _ := sch.AtomType(name)
		if err := db.DefineAtomType(*at); err != nil {
			fatal(err)
		}
	}
	for _, name := range sch.MoleculeTypeNames() {
		mt, _ := sch.MoleculeType(name)
		if err := db.DefineMoleculeType(*mt); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	app := workload.NewEngineApplier(db, *batch)
	ids, err := workload.Apply(ops, app)
	if err != nil {
		fatal(err)
	}
	if err := app.Flush(); err != nil {
		fatal(err)
	}
	// Advance the engine clock past the workload's valid horizon so
	// default ("now") queries see the final state.
	var maxT temporal.Instant
	for _, op := range ops {
		if op.From > maxT {
			maxT = op.From
		}
	}
	db.AdvanceClock(maxT + 1)
	elapsed := time.Since(start)

	s := db.Stats()
	fmt.Printf("loaded %d atoms with %d operations in %v (%.0f ops/sec)\n",
		len(ids), len(ops), elapsed.Round(time.Millisecond), float64(len(ops))/elapsed.Seconds())
	fmt.Printf("database: %d pages (%.1f MiB), strategy %s\n",
		s.DevicePags, float64(s.DevicePags)*8/1024, strategy)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcoload:", err)
	os.Exit(1)
}
