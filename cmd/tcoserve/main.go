// Command tcoserve serves a tcodm database over TCP using the wire
// protocol (see internal/wire and DESIGN.md §9). Clients connect with
// pkg/client or the tcoq shell's -remote flag.
//
//	tcoserve -db design.tdb -addr :7483
//	tcoserve -load personnel -addr :7483 -debug-addr localhost:6060
//
// A file-backed server is also a replication leader: followers subscribe
// to its WAL with -follow and serve read-only queries at a replicated
// watermark.
//
//	tcoserve -db leader.tdb -addr :7483                 # leader
//	tcoserve -db replica.tdb -follow host:7483 -addr :7484
//
// SIGTERM or SIGINT starts a graceful drain: the listener closes, busy
// sessions finish their current statement, and the process exits once
// every session is gone (or -drain-timeout forces the issue).
//
// When the leader dies, an operator promotes a caught-up replica in
// place — no restart, no data copy:
//
//	tcoserve -promote host:7484       # tell the replica at host:7484 to take over
//
// Promotion verifies the replica's history against the leader's last
// shipped digest, bumps the leadership epoch, and starts serving writes
// and replication subscriptions. A resurrected old leader that reconnects
// is fenced by the higher epoch and rejoins as a follower.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tcodm/internal/core"
	"tcodm/internal/obs"
	"tcodm/internal/repl"
	"tcodm/internal/schema"
	"tcodm/internal/server"
	"tcodm/internal/temporal"
	"tcodm/internal/wire"
	"tcodm/internal/workload"
)

func main() {
	dbPath := flag.String("db", "", "database file (empty = in-memory)")
	addr := flag.String("addr", ":7483", "listen address")
	follow := flag.String("follow", "", "run as a read replica of this leader address (requires -db)")
	load := flag.String("load", "", "seed an in-memory database with a synthetic workload: personnel|cad")
	maxConns := flag.Int("max-conns", 64, "concurrent session limit")
	queryTimeout := flag.Duration("query-timeout", 0, "server-wide per-query cap (0 = unlimited)")
	maxActive := flag.Int("max-active", 16, "concurrent query executions past admission")
	maxQueueDepth := flag.Int("max-queue", 64, "admission queue slots beyond -max-active")
	maxQueueWait := flag.Duration("max-queue-wait", time.Second, "max admission queue wait before shedding")
	retryAfter := flag.Duration("retry-after", 100*time.Millisecond, "retry-after hint attached to shed responses")
	maxResultRows := flag.Int("max-result-rows", 0, "per-query result row budget (0 = unlimited)")
	maxResultBytes := flag.Int("max-result-bytes", 0, "per-query result byte budget (0 = unlimited)")
	slow := flag.Duration("slow", 0, "log queries at or above this duration (0 = off)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight queries on shutdown")
	debugAddr := flag.String("debug-addr", "", "serve expvar+pprof on this address (e.g. localhost:6060)")
	workers := flag.Int("workers", 0, "per-query worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	archiveEvery := flag.Duration("archive-every", 0, "period between background history-tiering passes (0 = off; leader only)")
	archiveHot := flag.Uint64("archive-hot", 4096, "transaction instants each tiering pass keeps in the hot store")
	promote := flag.String("promote", "", "admin mode: promote the replica at this address to leader, print the result, exit")
	adminCmd := flag.String("admin", "", "admin mode: send this admin command (e.g. epoch) to the server at -addr, print the result, exit")
	flag.Parse()

	if *promote != "" {
		runAdmin(*promote, "promote")
		return
	}
	if *adminCmd != "" {
		runAdmin(*addr, *adminCmd)
		return
	}

	logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	cfg := server.Config{
		Addr:           *addr,
		MaxConns:       *maxConns,
		QueryTimeout:   *queryTimeout,
		MaxActive:      *maxActive,
		MaxQueueDepth:  *maxQueueDepth,
		MaxQueueWait:   *maxQueueWait,
		RetryAfterHint: *retryAfter,
		MaxResultRows:  *maxResultRows,
		MaxResultBytes: *maxResultBytes,
		Logf:           logf,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	var db *core.Engine
	var fol *repl.Follower
	if *follow != "" {
		// Replica mode: a local follower database kept converged with the
		// leader's WAL, served read-only.
		if *dbPath == "" {
			fatal(errors.New("-follow requires -db: replicas are file-backed"))
		}
		if *load != "" {
			fatal(errors.New("-follow and -load are mutually exclusive: a replica's data comes from its leader"))
		}
		var err error
		fol, err = repl.StartFollower(repl.FollowerConfig{
			Leader: *follow,
			Path:   *dbPath,
			Open:   core.Options{SlowQueryThreshold: *slow, QueryWorkers: *workers},
			Logf:   logf,
		})
		if err != nil {
			fatal(err)
		}
		db = fol.Engine()
		cfg.Staleness = fol.Staleness
		fmt.Printf("(replica of %s, watermark LSN %d)\n", *follow, fol.Watermark())
	} else {
		var err error
		db, err = core.Open(core.Options{Path: *dbPath, TimeIndex: true, SlowQueryThreshold: *slow, QueryWorkers: *workers})
		if err != nil {
			fatal(err)
		}
		if db.Recovered {
			rs := db.RecoveryStats()
			fmt.Printf("(crash recovery: replayed %d of %d log records, %d committed, %d torn bytes truncated)\n",
				rs.Replayed, rs.Records, rs.Committed, rs.TornBytes)
		}
		if *load != "" {
			n, err := seed(db, *load)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("(seeded %s workload: %d atoms)\n", *load, n)
		}
		if *dbPath != "" {
			// A file-backed leader serves replication subscriptions; an
			// in-memory engine has no WAL to ship.
			cfg.Repl = &repl.Source{Engine: db, Logf: logf}
		}
	}
	defer func() { db.Close() }()
	if *archiveEvery > 0 {
		if fol != nil {
			fatal(errors.New("-archive-every requires a leader: followers refuse local transactions (they replicate the leader's tiering runs)"))
		}
		// Background tiering: every pass compacts closed history steps and
		// migrates versions transaction-closed more than -archive-hot
		// instants ago into the cold archive file.
		go func() {
			t := time.NewTicker(*archiveEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					now := db.Now()
					if now <= temporal.Instant(*archiveHot) {
						continue
					}
					res, err := db.Archive(now - temporal.Instant(*archiveHot))
					if err != nil {
						logf("tiering pass: %v", err)
						continue
					}
					if res.Compacted+res.Archived > 0 {
						logf("tiering pass: compacted %d steps, archived %d versions", res.Compacted, res.Archived)
					}
				}
			}
		}()
	}
	if *debugAddr != "" {
		db.PublishDebugVars()
		dbg, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("(debug server on http://%s/debug/vars)\n", dbg.Addr())
	}

	cfg.Engine = db
	// The admin hook closes over srv and fol: "promote" turns a replica
	// into the leader in place — verify against the last shipped digest,
	// bump the epoch, open read-write, start serving subscriptions, and
	// report zero lag so replica-dialed sessions keep working.
	var srv *server.Server
	cfg.Admin = func(cmd string) (string, error) {
		switch cmd {
		case "epoch":
			eng := db
			if fol != nil {
				eng = fol.Engine()
			}
			return fmt.Sprintf("epoch %d", eng.Epoch()), nil
		case "promote":
			if fol == nil {
				return "", errors.New("promote: this server is not a replica (started without -follow)")
			}
			epoch, err := fol.Promote()
			if err != nil {
				return "", err
			}
			eng := fol.Engine()
			srv.SetRepl(&repl.Source{Engine: eng, Logf: logf})
			srv.SetStaleness(func() time.Duration { return 0 })
			return fmt.Sprintf("promoted: epoch %d, watermark LSN %d", epoch, eng.Watermark()), nil
		default:
			return "", fmt.Errorf("unknown admin command %q (want promote or epoch)", cmd)
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}
	if fol != nil {
		// Snapshot bootstraps swap the engine under the server; the closed
		// old engine is what the deferred Close sees, so track the newest.
		fol.SetOnSwap(func(old, next *core.Engine) {
			srv.SwapEngine(next)
			if *debugAddr != "" {
				next.PublishDebugVars()
			}
			db = next
		})
		go fol.Run(ctx)
	}

	served := make(chan error, 1)
	go func() { served <- srv.ListenAndServe() }()

	// ListenAndServe binds asynchronously; report the address once up.
	for i := 0; i < 100 && srv.Addr() == ""; i++ {
		select {
		case err := <-served:
			fatal(err)
		case <-time.After(10 * time.Millisecond):
		}
	}
	fmt.Printf("tcoserve listening on %s\n", srv.Addr())

	select {
	case err := <-served:
		if err != nil {
			fatal(err)
		}
		return
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	fmt.Println("draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "tcoserve: drain incomplete:", err)
	}
	if err := <-served; err != nil {
		fatal(err)
	}
	fmt.Println("drained cleanly")
}

// seed loads a synthetic workload, schema included.
func seed(db *core.Engine, name string) (int, error) {
	var sch *schema.Schema
	var ops []workload.Op
	var err error
	switch name {
	case "personnel":
		sch, err = workload.PersonnelSchema()
		ops = workload.Personnel(workload.DefaultPersonnel())
	case "cad":
		sch, err = workload.CADSchema()
		ops = workload.CAD(workload.DefaultCAD())
	default:
		return 0, fmt.Errorf("unknown workload %q (want personnel or cad)", name)
	}
	if err != nil {
		return 0, err
	}
	for _, n := range sch.AtomTypeNames() {
		at, _ := sch.AtomType(n)
		if err := db.DefineAtomType(*at); err != nil {
			return 0, err
		}
	}
	for _, n := range sch.MoleculeTypeNames() {
		mt, _ := sch.MoleculeType(n)
		if err := db.DefineMoleculeType(*mt); err != nil {
			return 0, err
		}
	}
	app := workload.NewEngineApplier(db, 256)
	ids, err := workload.Apply(ops, app)
	if err != nil {
		return 0, err
	}
	if err := app.Flush(); err != nil {
		return 0, err
	}
	return len(ids), nil
}

// runAdmin is the one-shot admin client: handshake, one Admin frame,
// print the server's answer, exit. Exit status 1 on any failure so CI
// scripts can gate on promotion succeeding.
func runAdmin(addr, cmd string) {
	out, err := sendAdmin(addr, cmd)
	if err != nil {
		fatal(fmt.Errorf("admin %q at %s: %w", cmd, addr, err))
	}
	fmt.Println(out)
}

func sendAdmin(addr, cmd string) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	br := bufio.NewReader(conn)
	if err := wire.WriteFrame(conn, wire.FrameHello, wire.EncodeHello("tcoserve-admin/1")); err != nil {
		return "", err
	}
	f, err := wire.ReadFrame(br)
	if err != nil {
		return "", err
	}
	if f.Type != wire.FrameWelcome {
		return "", adminServerError(f)
	}
	if err := wire.WriteFrame(conn, wire.FrameAdmin, wire.EncodeAdmin(cmd)); err != nil {
		return "", err
	}
	f, err = wire.ReadFrame(br)
	if err != nil {
		return "", err
	}
	if f.Type != wire.FrameAck {
		return "", adminServerError(f)
	}
	out, err := wire.DecodeAck(f.Payload)
	if err != nil {
		return "", err
	}
	wire.WriteFrame(conn, wire.FrameClose, nil)
	return out, nil
}

func adminServerError(f wire.Frame) error {
	if f.Type == wire.FrameError {
		if code, msg, detail, _, err := wire.DecodeErrorRetry(f.Payload); err == nil {
			if detail != "" {
				return fmt.Errorf("server error %d: %s (%s)", code, msg, detail)
			}
			return fmt.Errorf("server error %d: %s", code, msg)
		}
	}
	return fmt.Errorf("unexpected frame 0x%02x", f.Type)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcoserve:", err)
	os.Exit(1)
}
