// Command tcobench regenerates the reconstructed evaluation suite: every
// table and figure catalogued in DESIGN.md and EXPERIMENTS.md. Run with no
// arguments for the full suite at default scale, or name specific
// experiments:
//
//	tcobench                # everything
//	tcobench -scale 2 R-T1  # a bigger R-T1 only
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tcodm/internal/experiments"
)

func main() {
	scale := flag.Int("scale", 1, "workload scale factor")
	flag.Parse()
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	dir, err := os.MkdirTemp("", "tcobench")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	s := experiments.Scale(*scale)

	type exp struct {
		id  string
		run func() (*experiments.Table, error)
	}
	suite := []exp{
		{"R-T1", func() (*experiments.Table, error) { return experiments.RT1StorageCost(s) }},
		{"R-F1", func() (*experiments.Table, error) { return experiments.RF1CurrentQuery(s) }},
		{"R-F2", func() (*experiments.Table, error) { return experiments.RF2TimeSlice(s) }},
		{"R-F3", func() (*experiments.Table, error) { return experiments.RF3UpdateCost(s) }},
		{"R-T2", func() (*experiments.Table, error) { return experiments.RT2Molecule(s) }},
		{"R-F4", func() (*experiments.Table, error) { return experiments.RF4WhenSelection(s) }},
		{"R-F5", func() (*experiments.Table, error) { return experiments.RF5HistoryQuery(s) }},
		{"R-T3", func() (*experiments.Table, error) { return experiments.RT3Txn(s, dir) }},
		{"R-F6", func() (*experiments.Table, error) { return experiments.RF6BufferPool(s, dir) }},
		{"R-A1", func() (*experiments.Table, error) { return experiments.RA1SegmentCap(s) }},
		{"R-F8", func() (*experiments.Table, error) { return experiments.RF8ValueIndex(s) }},
		{"R-A2", func() (*experiments.Table, error) { return experiments.RA2Vacuum(s) }},
	}
	for _, e := range suite {
		if !sel(e.id) {
			continue
		}
		t, err := e.run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.id, err))
		}
		fmt.Println(t)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcobench:", err)
	os.Exit(1)
}
