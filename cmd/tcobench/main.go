// Command tcobench regenerates the reconstructed evaluation suite: every
// table and figure catalogued in DESIGN.md and EXPERIMENTS.md. Run with no
// arguments for the full suite at default scale, or name specific
// experiments:
//
//	tcobench                # everything
//	tcobench -scale 2 R-T1  # a bigger R-T1 only
//
// Alongside the printed tables, the run is written as machine-readable
// telemetry to BENCH_scale<N>.json in -out (wall time, result rows, and
// engine counter snapshots per experiment). -debug-addr serves expvar and
// pprof while the suite runs; -linger keeps the server up afterwards.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"tcodm/internal/experiments"
	"tcodm/internal/obs"
)

// benchResult is one experiment in the JSON report.
type benchResult struct {
	ID        string            `json:"id"`
	Title     string            `json:"title"`
	ElapsedNS int64             `json:"elapsed_ns"`
	Columns   []string          `json:"columns"`
	Rows      [][]string        `json:"rows"`
	Notes     []string          `json:"notes,omitempty"`
	Counters  map[string]uint64 `json:"counters,omitempty"`
}

// benchReport is the whole run.
type benchReport struct {
	Scale       int           `json:"scale"`
	StartedAt   time.Time     `json:"started_at"`
	TotalNS     int64         `json:"total_ns"`
	Experiments []benchResult `json:"experiments"`
}

func main() {
	scale := flag.Int("scale", 1, "workload scale factor")
	out := flag.String("out", ".", "directory for the BENCH_scale<N>.json report (empty = no report)")
	debugAddr := flag.String("debug-addr", "", "serve expvar+pprof on this address while the suite runs")
	linger := flag.Duration("linger", 0, "keep the process (and debug server) alive this long after the suite")
	remote := flag.String("remote", "", "run R-T7 against this tcoserve address instead of an in-process loopback server")
	ncores := flag.String("ncores", "1,2,4", "comma-separated worker counts for the R-T9 parallel-scaling sweep")
	flag.Parse()
	cores, err := parseCores(*ncores)
	if err != nil {
		fatal(err)
	}
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	report := &benchReport{Scale: *scale, StartedAt: time.Now()}
	if *debugAddr != "" {
		// Expose the report as it accumulates: each finished experiment's
		// counters and timings appear under /debug/vars key "tcodm".
		obs.SetDebugVars(func() any { return report })
		addr, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("(debug server on http://%s/debug/vars)\n", addr.Addr())
	}

	dir, err := os.MkdirTemp("", "tcobench")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	s := experiments.Scale(*scale)

	type exp struct {
		id  string
		run func() (*experiments.Table, error)
	}
	suite := []exp{
		{"R-T1", func() (*experiments.Table, error) { return experiments.RT1StorageCost(s) }},
		{"R-F1", func() (*experiments.Table, error) { return experiments.RF1CurrentQuery(s) }},
		{"R-F2", func() (*experiments.Table, error) { return experiments.RF2TimeSlice(s) }},
		{"R-F3", func() (*experiments.Table, error) { return experiments.RF3UpdateCost(s) }},
		{"R-T2", func() (*experiments.Table, error) { return experiments.RT2Molecule(s) }},
		{"R-F4", func() (*experiments.Table, error) { return experiments.RF4WhenSelection(s) }},
		{"R-F5", func() (*experiments.Table, error) { return experiments.RF5HistoryQuery(s) }},
		{"R-T3", func() (*experiments.Table, error) { return experiments.RT3Txn(s, dir) }},
		{"R-F6", func() (*experiments.Table, error) { return experiments.RF6BufferPool(s, dir) }},
		{"R-A1", func() (*experiments.Table, error) { return experiments.RA1SegmentCap(s) }},
		{"R-F8", func() (*experiments.Table, error) { return experiments.RF8ValueIndex(s) }},
		{"R-A2", func() (*experiments.Table, error) { return experiments.RA2Vacuum(s) }},
		{"R-T6", func() (*experiments.Table, error) { return experiments.RT6Overhead(s, dir) }},
		{"R-T7", func() (*experiments.Table, error) { return experiments.RT7WireOverhead(s, *remote) }},
		{"R-T9", func() (*experiments.Table, error) { return experiments.RT9ParallelScan(s, cores) }},
		{"R-T10", func() (*experiments.Table, error) { return experiments.RT10ReadReplicas(s, dir) }},
		{"R-T11", func() (*experiments.Table, error) { return experiments.RT11Tiering(s, dir) }},
	}
	suiteStart := time.Now()
	for _, e := range suite {
		if !sel(e.id) {
			continue
		}
		start := time.Now()
		t, err := e.run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.id, err))
		}
		fmt.Println(t)
		report.Experiments = append(report.Experiments, benchResult{
			ID: t.ID, Title: t.Title, ElapsedNS: time.Since(start).Nanoseconds(),
			Columns: t.Columns, Rows: t.Rows, Notes: t.Notes, Counters: t.Counters,
		})
	}
	report.TotalNS = time.Since(suiteStart).Nanoseconds()

	if *out != "" && len(report.Experiments) > 0 {
		path := filepath.Join(*out, fmt.Sprintf("BENCH_scale%d.json", *scale))
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d experiments)\n", path, len(report.Experiments))
	}
	if *linger > 0 {
		fmt.Printf("lingering %s for debug scraping...\n", *linger)
		time.Sleep(*linger)
	}
}

// parseCores parses the -ncores list, e.g. "1,4" -> [1, 4].
func parseCores(s string) ([]int, error) {
	var cores []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -ncores entry %q (want positive integers, e.g. \"1,4\")", part)
		}
		cores = append(cores, n)
	}
	if len(cores) == 0 {
		return nil, fmt.Errorf("-ncores is empty")
	}
	return cores, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcobench:", err)
	os.Exit(1)
}
