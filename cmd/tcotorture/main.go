// Command tcotorture runs the crash-recovery torture harness: a scripted
// workload is cut off at points spread across its whole I/O trace — with
// and without torn writes, through write-through and page-cache device
// models, plus transient sync and read errors — and after every cut the
// database is reopened and checked against an oracle of acknowledged
// commits. Every scenario is deterministic: a failure replays bit-for-bit
// from the printed seed.
//
//	tcotorture                      # all strategies, default seed and cuts
//	tcotorture -strategy separated  # one strategy
//	tcotorture -seed 7 -cuts 25     # denser cut schedule, different workload
package main

import (
	"flag"
	"fmt"
	"os"

	"tcodm/internal/atom"
	"tcodm/internal/fault"
	"tcodm/internal/obs"
)

func main() {
	seed := flag.Int64("seed", 20260806, "workload and schedule seed (printed; failures replay from it)")
	cuts := flag.Int("cuts", 14, "cut points per script variant")
	batch := flag.Int("batch", 5, "operations per transaction")
	strategy := flag.String("strategy", "", "run only this storage strategy (embedded, separated, tuple)")
	verbose := flag.Bool("v", false, "log each scenario's outcome")
	debugAddr := flag.String("debug-addr", "", "serve expvar+pprof on this address while scenarios run")
	flag.Parse()

	results := map[string]*fault.Result{}
	if *debugAddr != "" {
		obs.SetDebugVars(func() any { return results })
		addr, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcotorture: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(debug server on http://%s/debug/vars)\n", addr.Addr())
	}

	if *cuts < 1 {
		fmt.Fprintf(os.Stderr, "tcotorture: -cuts must be at least 1 (got %d)\n", *cuts)
		os.Exit(2)
	}
	strategies := []atom.Strategy{atom.StrategyEmbedded, atom.StrategySeparated, atom.StrategyTuple}
	if *strategy != "" {
		s, ok := atom.ParseStrategy(*strategy)
		if !ok {
			fmt.Fprintf(os.Stderr, "tcotorture: unknown strategy %q\n", *strategy)
			os.Exit(2)
		}
		strategies = []atom.Strategy{s}
	}

	fmt.Printf("torture seed %d, %d cut points per variant\n", *seed, *cuts)
	failed := false
	total := 0
	for _, strat := range strategies {
		dir, err := os.MkdirTemp("", "tcotorture")
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcotorture: %v\n", err)
			os.Exit(1)
		}
		logf := func(format string, args ...any) {}
		if *verbose {
			logf = func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			}
		}
		res, err := fault.Run(fault.Config{
			Strategy:  strat,
			Seed:      *seed,
			Cuts:      *cuts,
			BatchSize: *batch,
			Dir:       dir,
			Logf:      logf,
		})
		os.RemoveAll(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcotorture: %s: %v\n", strat, err)
			os.Exit(1)
		}
		results[strat.String()] = res
		total += res.Scenarios
		fmt.Printf("%-10s %4d scenarios: %d recovered, %d refused, %d clean, %d violations\n",
			strat, res.Scenarios, res.Recovered, res.Refused, res.Clean, len(res.Violations))
		fmt.Printf("%-10s recovery replay: %d records read, %d committed, %d redo ops applied, %d torn bytes truncated\n",
			"", res.Replay.Records, res.Replay.Committed, res.Replay.Replayed, res.Replay.TornBytes)
		for _, v := range res.Violations {
			failed = true
			fmt.Printf("  VIOLATION: %s\n", v)
		}

		// Archive-migration matrix: power cuts during the tiering cut-over,
		// torn WAL tails, torn archive tails.
		arcDir, err := os.MkdirTemp("", "tcotorture-arc")
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcotorture: %v\n", err)
			os.Exit(1)
		}
		arc, err := fault.RunArchive(fault.Config{
			Strategy:  strat,
			Seed:      *seed,
			Cuts:      *cuts,
			PoolPages: 16,
			Dir:       arcDir,
			Logf:      logf,
		})
		os.RemoveAll(arcDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcotorture: %s archive: %v\n", strat, err)
			os.Exit(1)
		}
		results[strat.String()+"-archive"] = arc
		total += arc.Scenarios
		fmt.Printf("%-10s %4d archive scenarios: %d recovered, %d refused, %d clean, %d violations\n",
			strat, arc.Scenarios, arc.Recovered, arc.Refused, arc.Clean, len(arc.Violations))
		for _, v := range arc.Violations {
			failed = true
			fmt.Printf("  VIOLATION: %s\n", v)
		}
	}
	fmt.Printf("total: %d scenarios\n", total)
	if failed {
		fmt.Printf("FAIL (replay with -seed %d)\n", *seed)
		os.Exit(1)
	}
	fmt.Println("ok")
}
