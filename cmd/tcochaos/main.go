// Command tcochaos replays seeded client workloads through the netfault
// chaos proxy against a live server and checks the end-to-end resilience
// contract: every query under injected network faults returns either a
// result byte-identical to the fault-free golden answer or a clean typed
// error — never a wrong answer, a panic, a hang, or a leaked connection.
//
//	tcochaos -seed 7               # full scenario matrix
//	tcochaos -short                # deterministic CI subset
//	tcochaos -report chaos.json    # write the deterministic report
//
// The process exits non-zero if any scenario violates the contract. Two
// runs with the same seed produce identical reports.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"tcodm/internal/chaos"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "master seed for workload, fault schedule, and client jitter")
		short    = flag.Bool("short", false, "run the deterministic CI subset of scenarios")
		report   = flag.String("report", "", "write the deterministic JSON report to this path")
		traceOut = flag.String("trace-out", "", "write a sample span tree from the trace-spans scenario to this path")
		vFlag    = flag.Bool("v", false, "log each scenario as it completes")
	)
	flag.Parse()

	fmt.Printf("chaos seed %d\n", *seed)
	cfg := chaos.Config{Seed: *seed, Short: *short}
	if *vFlag {
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		}
	}

	start := time.Now()
	rep, err := chaos.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcochaos: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("scenarios %d: %d ok, %d typed-error, %d violation(s) (%.1fs, %d retries, %d sheds)\n",
		rep.Summary.Total, rep.Summary.OK, rep.Summary.Errors, rep.Summary.Violations,
		time.Since(start).Seconds(), rep.Stats.Retries, rep.Stats.Sheds)
	for _, p := range rep.Sweep {
		label := "none"
		if p.FaultEvery > 0 {
			label = fmt.Sprintf("1/%d conns", p.FaultEvery)
		}
		fmt.Printf("availability (faults %s): %d/%d = %.3f\n", label, p.Correct, p.Queries, p.Availability)
	}

	if *report != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcochaos: encoding report: %v\n", err)
			os.Exit(2)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*report, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tcochaos: writing report: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("report written to %s\n", *report)
	}

	if *traceOut != "" {
		if rep.Stats.SampleTrace == "" {
			fmt.Fprintln(os.Stderr, "tcochaos: no sample trace captured (trace-spans scenario did not run?)")
			os.Exit(2)
		}
		if err := os.WriteFile(*traceOut, []byte(rep.Stats.SampleTrace), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tcochaos: writing sample trace: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("sample trace written to %s\n", *traceOut)
	}

	if len(rep.Stats.Failures) > 0 {
		for _, v := range rep.Stats.Failures {
			fmt.Printf("VIOLATION: %s\n", v)
		}
		fmt.Printf("FAIL (replay with -seed %d)\n", *seed)
		os.Exit(1)
	}
	fmt.Println("ok")
}
