// Command tcoq is the interactive TMQL shell: open (or create) a database
// and run temporal molecule queries against it.
//
//	tcoq -db design.tdb
//	> SELECT (Emp.name, Emp.salary) FROM Emp WHERE Emp.salary > 4000 AT 100
//	> SELECT HISTORY(salary) FROM Emp DURING [0, 200)
//	> .schema
//	> .stats
//	> .quit
//
// Without -db it opens an ephemeral in-memory database (useful together
// with .load to explore the synthetic workloads).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"tcodm/internal/core"
	"tcodm/internal/obs"
	"tcodm/internal/query"
	"tcodm/internal/schema"
	"tcodm/internal/temporal"
	"tcodm/internal/workload"
	"tcodm/pkg/client"
)

func main() {
	dbPath := flag.String("db", "", "database file (empty = in-memory)")
	oneShot := flag.String("c", "", "execute one query and exit")
	remote := flag.String("remote", "", "connect to a tcoserve instance at this address instead of opening a database")
	readOnly := flag.Bool("ro", false, "open the database read-only: no writer lease, safe alongside a live writer or follower")
	debugAddr := flag.String("debug-addr", "", "serve expvar+pprof on this address (e.g. localhost:6060)")
	slow := flag.Duration("slow", 0, "log queries at or above this duration (0 = off)")
	workers := flag.Int("workers", 0, "per-query worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	if *remote != "" {
		remoteShell(*remote, *oneShot)
		return
	}

	if *readOnly && *dbPath == "" {
		fatal(fmt.Errorf("-ro requires -db: only a file-backed database can be opened read-only"))
	}
	db, err := core.Open(core.Options{Path: *dbPath, ReadOnly: *readOnly, TimeIndex: true, SlowQueryThreshold: *slow, QueryWorkers: *workers})
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	if db.Recovered {
		fmt.Println("(crash recovery performed)")
		rs := db.RecoveryStats()
		fmt.Printf("(replayed %d of %d log records, %d committed, %d torn bytes truncated)\n",
			rs.Replayed, rs.Records, rs.Committed, rs.TornBytes)
	}
	if *debugAddr != "" {
		db.PublishDebugVars()
		addr, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("(debug server on http://%s/debug/vars)\n", addr.Addr())
	}
	if *oneShot != "" {
		res, err := runQuery(db, *oneShot)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Table())
		return
	}

	fmt.Println("tcoq — temporal complex-object query shell. Type .help for commands.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lastTrace uint64
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == ".quit" || line == ".exit":
			return
		case line == ".help":
			help()
		case line == ".schema":
			printSchema(db)
		case line == ".stats":
			printStats(db)
		case line == ".slowlog":
			printSlowLog(db)
		case strings.HasPrefix(line, ".trace"):
			printTrace(db, strings.Fields(line), lastTrace)
		case strings.HasPrefix(line, ".explain "):
			explain(db, strings.TrimSpace(strings.TrimPrefix(line, ".explain")))
		case strings.HasPrefix(line, ".load"):
			loadWorkload(db, strings.Fields(line))
		case line == ".vacuum":
			removed, err := db.Vacuum(db.Now())
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("vacuumed %d superseded versions\n", removed)
		case strings.HasPrefix(line, ".compact"):
			runTiering(db, strings.Fields(line), false)
		case strings.HasPrefix(line, ".archive"):
			runTiering(db, strings.Fields(line), true)
		case strings.HasPrefix(line, "."):
			fmt.Println("unknown command; try .help")
		default:
			res, err := runQuery(db, line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(res.Table())
			if len(res.Molecules) > 0 {
				for _, m := range res.Molecules {
					fmt.Printf("molecule %s root=%v atoms=%d\n", m.Type.Name, m.Root, m.Size())
				}
			}
			lastTrace = res.Trace
			fmt.Printf("(%d rows; plan: %s; trace: %d)\n", len(res.Rows), res.Plan, res.Trace)
		}
	}
}

// printTrace renders one span tree from the engine's tracer. With no
// argument it shows the last query's trace, falling back to the recent
// trace-id index; ".trace <id>" looks up a specific trace.
func printTrace(db *core.Engine, fields []string, lastTrace uint64) {
	tr := db.Tracer()
	if tr == nil {
		fmt.Println("tracing disabled")
		return
	}
	id := lastTrace
	if len(fields) > 1 {
		n, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			fmt.Println("usage: .trace [id]")
			return
		}
		id = n
	}
	if id == 0 {
		ids := tr.TraceIDs(20)
		if len(ids) == 0 {
			fmt.Println("no traces recorded yet")
			return
		}
		fmt.Println("recent traces (newest first); .trace <id> to inspect:")
		for _, t := range ids {
			fmt.Printf("  %d\n", t)
		}
		return
	}
	evs := tr.Trace(id)
	if len(evs) == 0 {
		fmt.Printf("trace %d not found (evicted or never recorded)\n", id)
		return
	}
	fmt.Print(obs.FormatTrace(evs))
}

// runTiering drives the history-tiering pipeline from the shell: .compact
// coalesces adjacent equal-valued closed steps in place; .archive also
// migrates transaction-closed versions into the cold archive file. An
// optional argument bounds the pass to versions closed before that
// transaction instant (default: the current instant).
func runTiering(db *core.Engine, fields []string, archive bool) {
	before := db.Now()
	if len(fields) > 1 {
		n, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			fmt.Println("usage: .compact [tt] / .archive [tt]")
			return
		}
		before = temporal.Instant(n)
	}
	if archive {
		res, err := db.Archive(before)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("compacted %d steps, archived %d versions (archive file: %d bytes)\n",
			res.Compacted, res.Archived, db.Stats().ArchiveBytes)
		return
	}
	merged, err := db.Compact(before)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("compacted %d steps\n", merged)
}

func help() {
	fmt.Print(`TMQL:
  SELECT ALL FROM <Molecule> [WHERE ...] [AT t] [ASOF t]
  SELECT (T.attr, ..., COUNT(T)) FROM <Type|Molecule> [WHERE ...] [WHEN ...] [AT t] [ASOF t]
  SELECT HISTORY(attr) FROM <Type> [WHERE ...] [DURING [a, b)]
  WHEN VALID(attr) OVERLAPS|CONTAINS|DURING|PRECEDES|MEETS|EQUALS PERIOD [a, b)
  EXPLAIN [ANALYZE] SELECT ...   show the plan (ANALYZE also runs it, with per-operator rows/times)
Shell commands:
  .schema            print the catalog
  .stats             engine statistics (layer counters, latency quantiles, query metrics)
  .explain <query>   shorthand for EXPLAIN ANALYZE <query>
  .trace [id]        span tree for the last query (or a specific trace id)
  .slowlog           recent slow queries (enable with -slow <dur>)
  .load personnel    load the synthetic personnel workload (defines its schema)
  .load cad          load the synthetic design workload
  .vacuum            purge versions superseded before the current instant
  .compact [tt]      coalesce equal-valued closed history steps (default bound: now)
  .archive [tt]      compact, then migrate closed versions into the cold archive
  .quit
`)
}

func printSchema(db *core.Engine) {
	sch := db.Schema()
	for _, name := range sch.AtomTypeNames() {
		at, _ := sch.AtomType(name)
		fmt.Printf("atom type %s:\n", name)
		for _, a := range at.Attrs {
			flags := ""
			if a.Temporal {
				flags += " temporal"
			}
			if a.Required {
				flags += " required"
			}
			if a.IsRef() {
				fmt.Printf("  %s -> %s (%s)%s\n", a.Name, a.Target, a.Card, flags)
				continue
			}
			fmt.Printf("  %s %s%s\n", a.Name, a.Kind, flags)
		}
	}
	for _, name := range sch.MoleculeTypeNames() {
		mt, _ := sch.MoleculeType(name)
		fmt.Printf("molecule type %s (root %s):\n", name, mt.Root)
		for _, e := range mt.Edges {
			dir := "->"
			if e.Reverse {
				dir = "<-"
			}
			fmt.Printf("  %s %s %s via %s\n", e.From, dir, e.To, e.Attr)
		}
	}
}

func printStats(db *core.Engine) {
	s := db.Stats()
	fmt.Printf("atoms: %d  device pages: %d (%.1f MiB)  log: %.1f KiB\n",
		s.Atoms, s.DevicePags, float64(s.DevicePags)*8/1024, float64(s.LogBytes)/1024)
	fmt.Printf("pool: hits %d, misses %d (ratio %.3f), evictions %d\n",
		s.Pool.Hits, s.Pool.Misses, s.Pool.HitRatio(), s.Pool.Evictions)
	fmt.Printf("atom layer: fast loads %d, full loads %d, segment reads %d, snapshot hops %d\n",
		s.AtomLayer.FastLoads, s.AtomLayer.FullLoads, s.AtomLayer.SegmentReads, s.AtomLayer.SnapshotHops)
	if reg := db.Metrics(); reg != nil {
		fmt.Print(reg.String())
	}
	if t := db.SlowLog().Threshold(); t > 0 {
		fmt.Printf("slow queries: %d captured (threshold %s)\n", db.SlowLog().Total(), t)
	}
}

func printSlowLog(db *core.Engine) {
	sl := db.SlowLog()
	if sl.Threshold() == 0 {
		fmt.Println("slow-query log disabled; restart with -slow <duration> (e.g. -slow 10ms)")
		return
	}
	entries := sl.Entries()
	if len(entries) == 0 {
		fmt.Printf("no queries at or above %s yet\n", sl.Threshold())
		return
	}
	fmt.Print(sl.String())
}

func explain(db *core.Engine, q string) {
	if q == "" {
		fmt.Println("usage: .explain <query>")
		return
	}
	res, err := db.Query("EXPLAIN ANALYZE " + q)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(res.Plan)
}

func loadWorkload(db *core.Engine, args []string) {
	if len(args) < 2 {
		fmt.Println("usage: .load personnel|cad")
		return
	}
	var sch *schema.Schema
	var ops []workload.Op
	var err error
	switch args[1] {
	case "personnel":
		sch, err = workload.PersonnelSchema()
		ops = workload.Personnel(workload.DefaultPersonnel())
	case "cad":
		sch, err = workload.CADSchema()
		ops = workload.CAD(workload.DefaultCAD())
	default:
		fmt.Println("unknown workload:", args[1])
		return
	}
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, name := range sch.AtomTypeNames() {
		at, _ := sch.AtomType(name)
		if err := db.DefineAtomType(*at); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	for _, name := range sch.MoleculeTypeNames() {
		mt, _ := sch.MoleculeType(name)
		if err := db.DefineMoleculeType(*mt); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	app := workload.NewEngineApplier(db, 128)
	ids, err := workload.Apply(ops, app)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := app.Flush(); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("loaded %d atoms (%d operations)\n", len(ids), len(ops))
}

// runQuery executes one local query, cancellable with ctrl-C: a long
// scan aborts and returns to the prompt instead of requiring a kill.
func runQuery(db *core.Engine, q string) (*query.Result, error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	return db.QueryCtx(ctx, q)
}

// remoteShell is the shell against a tcoserve instance: TMQL travels over
// the wire, session options via dot-commands.
func remoteShell(addr, oneShot string) {
	cl, err := client.Dial(addr)
	if err != nil {
		fatal(err)
	}
	defer cl.Close()
	sess, err := cl.Session()
	if err != nil {
		fatal(err)
	}
	defer sess.Close()

	run := func(q string) (*client.Result, error) {
		// ctrl-C during a long remote query drops the prompt's wait; the
		// server-side timeout (".option timeout <dur>") bounds the query.
		return sess.Query(q)
	}
	if oneShot != "" {
		res, err := run(oneShot)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Table())
		return
	}

	fmt.Printf("tcoq — connected to %s (session %d). Type .help for commands.\n", addr, sess.ID())
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var last *client.Result
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == ".quit" || line == ".exit":
			return
		case line == ".help":
			remoteHelp()
		case line == ".ping":
			if err := sess.Ping(); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("pong")
			}
		case line == ".begin":
			tt, err := sess.Begin()
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("read view pinned at tt=%s\n", tt)
			}
		case line == ".end":
			if err := sess.End(); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("read view released")
			}
		case line == ".trace":
			if last == nil || last.Trace == 0 {
				fmt.Println("no traced query yet")
				continue
			}
			fmt.Printf("trace %d: %s\n", last.Trace, last.Res.String())
			fmt.Printf("full span tree: curl the server's /debug/trace/%d (requires tcoserve -debug-addr)\n", last.Trace)
		case strings.HasPrefix(line, ".option"):
			fields := strings.Fields(line)
			if len(fields) < 2 || len(fields) > 3 {
				fmt.Println("usage: .option <key> [value]")
				continue
			}
			val := ""
			if len(fields) == 3 {
				val = fields[2]
			}
			ack, err := sess.Option(fields[1], val)
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("%s = %s\n", fields[1], ack)
			}
		case strings.HasPrefix(line, "."):
			fmt.Println("unknown command; try .help")
		default:
			res, err := run(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			last = res
			fmt.Print(res.Table())
			fmt.Printf("(%d rows in %s; plan: %s; trace: %d)\n", len(res.Rows), res.Elapsed, res.Plan, res.Trace)
		}
	}
}

func remoteHelp() {
	fmt.Print(`Remote session commands (TMQL queries run server-side; see .help in local mode for syntax):
  .option vt <t>|default       default valid-time slice for queries without AT
  .option tt <t>|default       default transaction-time slice (ASOF)
  .option timeout <dur>        per-query timeout (e.g. 250ms; 0 = off)
  .option slow <dur>           per-session slow-query threshold
  .option batch <n>            result rows per frame
  .begin / .end                pin / release a repeatable-read view
  .trace                       trace id + exact resource totals of the last query
  .ping                        liveness probe
  .quit
`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcoq:", err)
	os.Exit(1)
}
