module tcodm

go 1.22
